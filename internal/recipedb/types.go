// Package recipedb synthesizes a RecipeDB-style corpus. The paper
// mines 118,000 recipes scraped from AllRecipes.com and FOOD.com; that
// dataset is not redistributable, so this package generates recipes
// from a seeded generative grammar instead — with gold entity spans
// and gold event relations attached to every phrase and instruction,
// replacing the paper's manual annotation step.
//
// The grammar's production rules encode exactly the lexical challenges
// §II.A enumerates: homograph attributes ("clove" as unit vs. name),
// parenthetical packaging ("1 (8 ounce) package cream cheese"),
// hyphenated ranges ("2-3"), trailing state clauses (", softened"),
// style variation between the two source sites, and a stream of
// out-of-vocabulary ingredient names so taggers cannot simply memorize
// the inventory.
package recipedb

import (
	"strings"

	"recipemodel/internal/ner"
)

// Source identifies the simulated origin site. The two styles differ
// in unit vocabulary (FOOD.com abbreviates), template mixture, and
// parts of the ingredient inventory — which is what produces the
// cross-domain F1 drop of Table IV.
type Source int

// The simulated origin sites.
const (
	SourceAllRecipes Source = iota
	SourceFoodCom
)

// String names the source like the paper does.
func (s Source) String() string {
	switch s {
	case SourceAllRecipes:
		return "AllRecipes"
	case SourceFoodCom:
		return "FOOD.com"
	default:
		return "BOTH"
	}
}

// IngredientPhrase is one line of a recipe's ingredients section with
// gold annotations.
type IngredientPhrase struct {
	// Text is the phrase as it would appear on the site.
	Text string
	// Tokens is the tokenized phrase (quantities like "1 1/2" are
	// single tokens, matching the tokenize package).
	Tokens []string
	// Spans are gold entity spans over Tokens (Table II types).
	Spans []ner.Span

	// Gold attribute values, for direct table reproduction.
	Name     string
	State    string
	Quantity string
	Unit     string
	Temp     string
	DryFresh string
	Size     string
}

// GoldRelation is one many-to-many cooking event: a process applied to
// a set of ingredients and utensils (§III.B, Fig 5).
type GoldRelation struct {
	Process     string
	Ingredients []string
	Utensils    []string
}

// Instruction is one step of the instructions section with gold
// annotations.
type Instruction struct {
	Text      string
	Tokens    []string
	Spans     []ner.Span // PROCESS / UTENSIL / INGR spans
	Relations []GoldRelation
}

// Recipe is a full synthetic recipe.
type Recipe struct {
	ID           int
	Title        string
	Cuisine      string
	Source       Source
	Ingredients  []IngredientPhrase
	Instructions []Instruction
}

// Detokenize renders tokens as display text: commas and closing
// brackets attach left, opening brackets attach right.
func Detokenize(tokens []string) string {
	var b strings.Builder
	for i, tok := range tokens {
		if i > 0 && !attachesLeft(tok) && !attachesRight(prevTok(tokens, i)) {
			b.WriteByte(' ')
		}
		b.WriteString(tok)
	}
	return b.String()
}

func prevTok(tokens []string, i int) string { return tokens[i-1] }

func attachesLeft(tok string) bool {
	switch tok {
	case ",", ".", ")", ";", "!", "?":
		return true
	}
	return false
}

func attachesRight(tok string) bool {
	return tok == "("
}

// Cuisines is the cuisine inventory (the paper draws instruction
// training recipes from 40 cuisines).
var Cuisines = []string{
	"American", "Italian", "French", "Spanish", "Greek", "Turkish",
	"Lebanese", "Moroccan", "Ethiopian", "Nigerian", "Indian",
	"Pakistani", "Bangladeshi", "Nepalese", "Thai", "Vietnamese",
	"Chinese", "Japanese", "Korean", "Filipino", "Indonesian",
	"Malaysian", "Mexican", "Brazilian", "Peruvian", "Argentinian",
	"Colombian", "Cuban", "Jamaican", "German", "Polish", "Russian",
	"Ukrainian", "Hungarian", "Swedish", "Irish", "Scottish",
	"Portuguese", "Australian", "Canadian",
}
