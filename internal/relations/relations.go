// Package relations extracts the many-to-many cooking events of
// §III.B: for every verb classified as a process, the subjects,
// objects and prepositional objects are harvested from the dependency
// tree, filtered through the NER-derived entity spans and the
// frequency-thresholded dictionaries, and merged into tuples
// (process × {ingredients} × {utensils}). Fig 5's example — Bring +
// Water and Bring + Pot collapsing into one compound relation — is
// exactly the merge step here.
package relations

import (
	"strings"

	"recipemodel/internal/depparse"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/lemma"
	"recipemodel/internal/ner"
)

// Argument is one entity participating in a relation.
type Argument struct {
	// Text is the full entity surface (possibly multiword).
	Text string
	// Index is the token index of the entity's head.
	Index int
}

// Relation is a many-to-many cooking event.
type Relation struct {
	// Process is the technique verb (lower-cased surface form).
	Process string
	// ProcessIndex is the verb's token index.
	ProcessIndex int
	Ingredients  []Argument
	Utensils     []Argument
}

// Arity returns the number of entity arguments (the quantity whose
// mean 6.164 / σ 5.70 the paper reports per instruction — counting
// each one-to-one pairing inside the compound tuple).
func (r Relation) Arity() int { return len(r.Ingredients) + len(r.Utensils) }

// PairCount returns the number of elementary (process, entity) pairs
// the compound relation encodes; a relation with no arguments still
// counts itself once.
func (r Relation) PairCount() int {
	if n := r.Arity(); n > 0 {
		return n
	}
	return 1
}

// String renders "bring{water | pot}".
func (r Relation) String() string {
	var parts []string
	for _, a := range r.Ingredients {
		parts = append(parts, a.Text)
	}
	sep := " | "
	var ut []string
	for _, a := range r.Utensils {
		ut = append(ut, a.Text)
	}
	s := r.Process + "{" + strings.Join(parts, ", ")
	if len(ut) > 0 {
		s += sep + strings.Join(ut, ", ")
	}
	return s + "}"
}

// Extractor turns parsed, entity-tagged instructions into relations.
type Extractor struct {
	techniques *gazetteer.Lexicon
	utensils   *gazetteer.Lexicon
	lem        *lemma.Lemmatizer
}

// NewExtractor builds an extractor with the given dictionaries; pass
// the frequency-filtered dictionaries from the NER stage (§III.A) or
// the static gazetteers.
func NewExtractor(techniques, utensils *gazetteer.Lexicon) *Extractor {
	return &Extractor{
		techniques: techniques,
		utensils:   utensils,
		lem:        lemma.New(),
	}
}

// NewDefaultExtractor uses the static gazetteers.
func NewDefaultExtractor() *Extractor {
	return NewExtractor(gazetteer.Techniques(), gazetteer.Utensils())
}

// Extract finds the relations in one instruction. tree is the
// dependency parse of the instruction tokens; entities are the NER
// spans over the same tokens.
func (e *Extractor) Extract(tree *depparse.Tree, entities []ner.Span) []Relation {
	n := len(tree.Tokens)
	if n == 0 {
		return nil
	}
	// entityAt[i] = the span covering token i, if any.
	entityAt := make([]*ner.Span, n)
	for s := range entities {
		for k := entities[s].Start; k < entities[s].End && k < n; k++ {
			entityAt[k] = &entities[s]
		}
	}

	var out []Relation
	for v := 0; v < n; v++ {
		if !strings.HasPrefix(tree.POS[v], "VB") {
			continue
		}
		verb := strings.ToLower(tree.Tokens[v])
		verbLemma := e.lem.Lemma(verb, lemma.Verb)
		// the paper filters candidate verbs through the technique
		// dictionary and the NER process tags; we accept either signal.
		isProc := e.techniques.Contains(verb) || e.techniques.Contains(verbLemma)
		if !isProc && entityAt[v] != nil && entityAt[v].Type == ner.Process {
			isProc = true
		}
		if !isProc {
			continue
		}
		rel := Relation{Process: verb, ProcessIndex: v}

		// collect candidate argument head indices:
		var args []int
		args = append(args, tree.ChildrenByLabel(v, depparse.Dobj)...)
		args = append(args, tree.ChildrenByLabel(v, depparse.Nsubj)...)
		for _, prep := range tree.ChildrenByLabel(v, depparse.Prep) {
			args = append(args, tree.ChildrenByLabel(prep, depparse.Pobj)...)
		}
		// coordinated verbs share arguments ("drain and serve the
		// pasta": both processes apply to pasta) — inherit in both
		// directions along conj arcs.
		inherit := func(other int) {
			if other < 0 || !strings.HasPrefix(tree.POS[other], "VB") {
				return
			}
			args = append(args, tree.ChildrenByLabel(other, depparse.Dobj)...)
			for _, prep := range tree.ChildrenByLabel(other, depparse.Prep) {
				args = append(args, tree.ChildrenByLabel(prep, depparse.Pobj)...)
			}
		}
		if tree.Labels[v] == depparse.Conj {
			inherit(tree.Heads[v])
		}
		for _, c := range tree.ChildrenByLabel(v, depparse.Conj) {
			inherit(c)
		}
		// expand conjoined entities transitively ("the onions, the
		// carrots and the celery" chains conj → conj → conj).
		expanded := append([]int(nil), args...)
		for qi := 0; qi < len(expanded); qi++ {
			expanded = append(expanded, tree.ChildrenByLabel(expanded[qi], depparse.Conj)...)
		}

		seen := map[int]bool{}
		for _, a := range expanded {
			if a == v || seen[a] {
				continue
			}
			seen[a] = true
			arg := e.classify(tree, entityAt, a)
			switch arg.kind {
			case ner.Ingredient:
				rel.Ingredients = append(rel.Ingredients, arg.Argument)
			case ner.Utensil:
				rel.Utensils = append(rel.Utensils, arg.Argument)
			}
		}
		out = append(out, rel)
	}
	return out
}

type classified struct {
	Argument
	kind string
}

// classify resolves a candidate argument token to an entity, using
// NER spans first and the utensil dictionary as fallback — the paper
// filters the relationship list "using the NER inferred Ingredients
// and Utensils" (§III.B).
func (e *Extractor) classify(tree *depparse.Tree, entityAt []*ner.Span, idx int) classified {
	if sp := entityAt[idx]; sp != nil {
		text := strings.ToLower(strings.Join(tree.Tokens[sp.Start:sp.End], " "))
		switch sp.Type {
		case ner.Ingredient:
			return classified{Argument{Text: text, Index: idx}, ner.Ingredient}
		case ner.Utensil:
			return classified{Argument{Text: text, Index: idx}, ner.Utensil}
		case ner.Process:
			// nominal process ("bring to a boil"): not an entity argument.
			return classified{kind: ""}
		}
	}
	// dictionary fallback on the head word and the bigram around it.
	w := strings.ToLower(tree.Tokens[idx])
	if e.utensils.Contains(w) {
		return classified{Argument{Text: w, Index: idx}, ner.Utensil}
	}
	if idx > 0 {
		bigram := strings.ToLower(tree.Tokens[idx-1] + " " + tree.Tokens[idx])
		if e.utensils.Contains(bigram) {
			return classified{Argument{Text: bigram, Index: idx}, ner.Utensil}
		}
	}
	return classified{kind: ""}
}

// Event is a relation situated in the temporal sequence of a recipe.
type Event struct {
	Step int // 0-based instruction index
	Relation
}

// Chain orders the relations of successive instructions into the
// temporal event chain of §III ("narrative chain" of the recipe).
func Chain(perStep [][]Relation) []Event {
	var out []Event
	for step, rels := range perStep {
		for _, r := range rels {
			out = append(out, Event{Step: step, Relation: r})
		}
	}
	return out
}
