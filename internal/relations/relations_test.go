package relations

import (
	"strings"
	"testing"

	"recipemodel/internal/depparse"
	"recipemodel/internal/ner"
)

func fixture(t *testing.T, text, tags string, spans ...ner.Span) (*depparse.Tree, []ner.Span) {
	t.Helper()
	tokens := strings.Fields(text)
	tr := depparse.Parse(tokens, strings.Fields(tags))
	return tr, spans
}

func TestExtractBringWaterPot(t *testing.T) {
	// Fig 5: Bring + Water and Bring + Pot merge into one relation.
	tr, spans := fixture(t,
		"Bring water to a boil in a large pot",
		"VB NN TO DT NN IN DT JJ NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 1, End: 2, Type: ner.Ingredient},
		ner.Span{Start: 4, End: 5, Type: ner.Process},
		ner.Span{Start: 8, End: 9, Type: ner.Utensil},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	r := rels[0]
	if r.Process != "bring" {
		t.Fatalf("process = %q", r.Process)
	}
	if len(r.Ingredients) != 1 || r.Ingredients[0].Text != "water" {
		t.Fatalf("ingredients = %v", r.Ingredients)
	}
	if len(r.Utensils) != 1 || r.Utensils[0].Text != "pot" {
		t.Fatalf("utensils = %v", r.Utensils)
	}
	if r.Arity() != 2 || r.PairCount() != 2 {
		t.Fatalf("arity = %d", r.Arity())
	}
}

func TestExtractManyToMany(t *testing.T) {
	// "potatoes are fried with olive oil in a pan" → fry × {potatoes,
	// olive oil} × {pan}: the paper's §III.B example.
	tr, spans := fixture(t,
		"fry the potatoes with olive oil in a pan",
		"VB DT NNS IN NN NN IN DT NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 2, End: 3, Type: ner.Ingredient},
		ner.Span{Start: 4, End: 6, Type: ner.Ingredient},
		ner.Span{Start: 8, End: 9, Type: ner.Utensil},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	r := rels[0]
	if len(r.Ingredients) != 2 {
		t.Fatalf("ingredients = %v", r.Ingredients)
	}
	if r.Ingredients[1].Text != "olive oil" {
		t.Fatalf("multiword entity text = %q", r.Ingredients[1].Text)
	}
	if len(r.Utensils) != 1 || r.Utensils[0].Text != "pan" {
		t.Fatalf("utensils = %v", r.Utensils)
	}
}

func TestExtractConjoinedObjects(t *testing.T) {
	tr, spans := fixture(t,
		"add the onions and carrots to the skillet",
		"VB DT NNS CC NNS TO DT NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 2, End: 3, Type: ner.Ingredient},
		ner.Span{Start: 4, End: 5, Type: ner.Ingredient},
		ner.Span{Start: 7, End: 8, Type: ner.Utensil},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	if got := rels[0].Arity(); got != 3 {
		t.Fatalf("arity = %d, want 3 (onions, carrots, skillet)", got)
	}
}

func TestExtractConjoinedVerbsInherit(t *testing.T) {
	tr, spans := fixture(t,
		"drain and serve the pasta",
		"VB CC VB DT NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 2, End: 3, Type: ner.Process},
		ner.Span{Start: 4, End: 5, Type: ner.Ingredient},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 2 {
		t.Fatalf("relations = %v", rels)
	}
	for _, r := range rels {
		if len(r.Ingredients) != 1 || r.Ingredients[0].Text != "pasta" {
			t.Fatalf("%s should apply to pasta: %v", r.Process, r)
		}
	}
}

func TestNonProcessVerbIgnored(t *testing.T) {
	tr, spans := fixture(t,
		"enjoy the soup",
		"VB DT NN",
		ner.Span{Start: 2, End: 3, Type: ner.Ingredient},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 0 {
		t.Fatalf("'enjoy' is not a technique: %v", rels)
	}
}

func TestDictionaryFallbackForUtensil(t *testing.T) {
	// no NER utensil span; the dictionary should still classify "pot".
	tr, spans := fixture(t,
		"boil the water in a pot",
		"VB DT NN IN DT NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 2, End: 3, Type: ner.Ingredient},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 1 || len(rels[0].Utensils) != 1 {
		t.Fatalf("relations = %v", rels)
	}
}

func TestProcessNominalNotAnArgument(t *testing.T) {
	// "a boil" is a PROCESS span in pobj position: it must not become
	// an ingredient or utensil argument.
	tr, spans := fixture(t,
		"bring the water to a boil",
		"VB DT NN TO DT NN",
		ner.Span{Start: 0, End: 1, Type: ner.Process},
		ner.Span{Start: 2, End: 3, Type: ner.Ingredient},
		ner.Span{Start: 5, End: 6, Type: ner.Process},
	)
	rels := NewDefaultExtractor().Extract(tr, spans)
	if len(rels) != 1 {
		t.Fatalf("relations = %v", rels)
	}
	if rels[0].Arity() != 1 {
		t.Fatalf("boil nominal leaked into arguments: %v", rels[0])
	}
}

func TestEmptyInstruction(t *testing.T) {
	tr := depparse.Parse(nil, nil)
	if rels := NewDefaultExtractor().Extract(tr, nil); rels != nil {
		t.Fatalf("relations = %v", rels)
	}
}

func TestRelationString(t *testing.T) {
	r := Relation{
		Process:     "bring",
		Ingredients: []Argument{{Text: "water"}},
		Utensils:    []Argument{{Text: "pot"}},
	}
	if got := r.String(); got != "bring{water | pot}" {
		t.Fatalf("String = %q", got)
	}
	empty := Relation{Process: "cook"}
	if empty.PairCount() != 1 {
		t.Fatal("empty relation should count once")
	}
}

func TestChain(t *testing.T) {
	events := Chain([][]Relation{
		{{Process: "preheat"}},
		{{Process: "mix"}, {Process: "pour"}},
		nil,
		{{Process: "bake"}},
	})
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	wantSteps := []int{0, 1, 1, 3}
	wantProcs := []string{"preheat", "mix", "pour", "bake"}
	for i, e := range events {
		if e.Step != wantSteps[i] || e.Process != wantProcs[i] {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}
