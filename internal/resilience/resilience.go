// Package resilience is the serving-side survival kit: panic-recovery
// and per-request-deadline HTTP middleware, a weighted admission
// limiter that sheds load with 429 + Retry-After instead of queueing
// unboundedly, and a context-aware retry/backoff primitive for
// callers. The pieces are independent; internal/server composes them
// in front of the pipeline handlers, and any later subsystem (sharded
// backends, cache fills, upstream fetches) can reuse them.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// Recover wraps h so a panicking handler produces a 500 JSON error and
// a stack trace in the log instead of killing the process. If the
// handler already wrote its header, the connection is left to die (the
// response is unsalvageable) but the server keeps serving.
func Recover(logger *log.Logger, h http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// http.ErrAbortHandler is net/http's own "abandon this
				// response" sentinel; re-panic so the server handles it.
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintf(w, `{"error":"internal server error"}`+"\n")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Deadline wraps h so every request's context is cancelled after d.
// Handlers that thread the request context into the pipeline's batch
// APIs stop computing shortly after the deadline instead of burning
// CPU for a client that gave up. d <= 0 disables the wrap.
func Deadline(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Limiter is a weighted admission semaphore: at most Capacity units of
// work in flight, where a unit is caller-defined (the server weighs a
// single annotate at 1 and a batch at its phrase count, so one
// 10k-phrase batch counts like 10k singles). Admission never queues —
// an over-capacity request is shed immediately so the caller can
// return 429 and the client can back off.
type Limiter struct {
	mu       sync.Mutex
	capacity int64
	inflight int64
}

// NewLimiter builds a limiter admitting up to capacity units;
// capacity <= 0 means unlimited (every TryAcquire succeeds).
func NewLimiter(capacity int) *Limiter {
	return &Limiter{capacity: int64(capacity)}
}

// TryAcquire admits weight units of work, returning a release func and
// true, or (nil, false) when admission would exceed capacity. Weights
// below 1 count as 1. A request heavier than the whole capacity is
// still admitted when the limiter is idle — otherwise it could never
// run — but blocks all other admission until released.
func (l *Limiter) TryAcquire(weight int) (release func(), ok bool) {
	if l == nil || l.capacity <= 0 {
		return func() {}, true
	}
	w := int64(weight)
	if w < 1 {
		w = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Compare as remaining headroom (capacity-inflight) rather than
	// summing inflight+w, which a near-MaxInt64 weight could overflow
	// into a negative number that slips past the capacity check.
	if l.inflight > 0 && w > l.capacity-l.inflight {
		return nil, false
	}
	l.inflight += w
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inflight -= w
			l.mu.Unlock()
		})
	}, true
}

// Saturated reports whether the limiter currently has no headroom —
// the next TryAcquire of any weight would shed. This is the server's
// degraded-mode signal: while saturated, cache hits (which cost no
// admission weight) are still served and misses shed, and the
// hits-served-degraded counter tells operators it is happening. An
// unlimited limiter is never saturated.
func (l *Limiter) Saturated() bool {
	if l == nil || l.capacity <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight >= l.capacity
}

// InFlight reports the units currently admitted.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.inflight)
}

// ShedJSON writes the standard load-shedding response: 429 Too Many
// Requests with a Retry-After hint (in whole seconds, minimum 1).
func ShedJSON(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, `{"error":"server is at capacity, retry after %ds"}`+"\n", secs)
}

// Backoff is a capped exponential backoff with deterministic jitter:
// attempt n (0-based) sleeps Base·2ⁿ, capped at Max, then stretched by
// up to Jitter·delay using a stream seeded by Seed — so a fixed seed
// reproduces the exact delay sequence, which keeps retry tests
// clock-free and flake-free.
type Backoff struct {
	// Base is the first delay (default 10ms).
	Base time.Duration
	// Max caps a single delay (default 1s).
	Max time.Duration
	// Attempts bounds the number of calls (default 3).
	Attempts int
	// Jitter in [0, 1] perturbs each delay by a seeded random factor;
	// how the factor is applied is chosen by Mode (default 0: none).
	Jitter float64
	// Mode selects the jitter shape (default JitterStretch, the
	// original grow-only behavior).
	Mode JitterMode
	// Seed keys the jitter stream.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil uses the real clock
	// (interrupted early if ctx dies).
	Sleep func(time.Duration)
}

// JitterMode selects how Backoff.Jitter perturbs a nominal delay.
type JitterMode int

const (
	// JitterStretch multiplies each delay by a seeded factor in
	// [1, 1+Jitter]: delays only grow. This is the zero value and the
	// original Backoff behavior — existing schedules are unchanged.
	JitterStretch JitterMode = iota
	// JitterSpread multiplies each delay by a seeded factor in
	// [1-Jitter/2, 1+Jitter/2]: delays scatter around the nominal
	// value instead of drifting longer. The circuit breaker's
	// half-open probe spacing uses this mode so probes from many
	// instances desynchronize while the mean reopen delay still
	// tracks the configured timeout.
	JitterSpread
)

// Delays returns the exact backoff schedule the configuration
// produces: one delay per retry gap (Attempts-1 entries). The jitter
// stream is keyed only by Seed, so a fixed configuration reproduces
// the identical schedule on every call — the determinism the breaker
// and retry tests pin.
func (b Backoff) Delays() []time.Duration {
	b = b.withDefaults()
	rng := rand.New(rand.NewSource(b.Seed))
	out := make([]time.Duration, 0, b.Attempts-1)
	d := b.Base
	for i := 0; i < b.Attempts-1; i++ {
		delay := d
		if b.Jitter > 0 {
			switch b.Mode {
			case JitterSpread:
				delay = time.Duration(float64(delay) * (1 + b.Jitter*(rng.Float64()-0.5)))
			default:
				delay = time.Duration(float64(delay) * (1 + b.Jitter*rng.Float64()))
			}
		}
		out = append(out, delay)
		d *= 2
		if d > b.Max {
			d = b.Max
		}
	}
	return out
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	return b
}

// Retry calls fn up to b.Attempts times, backing off between attempts,
// until fn returns nil. It stops early when ctx is cancelled and never
// sleeps past cancellation: a cancellation that lands mid-backoff
// returns promptly with an error satisfying errors.Is(err, ctx.Err()),
// joined with fn's last error so neither cause is lost. When every
// attempt runs, the returned error is fn's last error.
func Retry(ctx context.Context, b Backoff, fn func(ctx context.Context) error) error {
	b = b.withDefaults()
	delays := b.Delays()
	var err error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				return cerr
			}
			return errors.Join(err, cerr)
		}
		if err = fn(ctx); err == nil {
			return nil
		}
		if attempt == b.Attempts-1 {
			break
		}
		if !sleepCtx(ctx, delays[attempt], b.Sleep) {
			return errors.Join(err, ctx.Err())
		}
	}
	return err
}

// sleepCtx sleeps d (via custom sleeper when set), reporting false if
// ctx died first.
func sleepCtx(ctx context.Context, d time.Duration, sleeper func(time.Duration)) bool {
	if sleeper != nil {
		sleeper(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
