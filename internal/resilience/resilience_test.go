package resilience

import (
	"bytes"
	"context"
	"errors"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecoverContainsPanic(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Recover(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/x", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "internal server error") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if !strings.Contains(buf.String(), "handler exploded") || !strings.Contains(buf.String(), "resilience_test.go") {
		t.Fatalf("log missing panic value or stack:\n%s", buf.String())
	}
}

func TestRecoverPassesThroughAbortHandler(t *testing.T) {
	h := Recover(log.New(&bytes.Buffer{}, "", 0), http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler must propagate to the server")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	t.Fatal("expected re-panic")
}

func TestDeadlineAttachesTimeout(t *testing.T) {
	var hasDeadline bool
	h := Deadline(time.Minute, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	if !hasDeadline {
		t.Fatal("request context has no deadline")
	}
	// disabled wrap passes the handler through untouched.
	h = Deadline(0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Fatal("Deadline(0) must not attach a deadline")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
}

func TestLimiterShedsAtCapacity(t *testing.T) {
	l := NewLimiter(1)
	rel, ok := l.TryAcquire(1)
	if !ok {
		t.Fatal("first acquire must succeed")
	}
	if _, ok := l.TryAcquire(1); ok {
		t.Fatal("second acquire at capacity 1 must shed")
	}
	rel()
	rel() // idempotent release must not double-free
	if l.InFlight() != 0 {
		t.Fatalf("inflight = %d after release", l.InFlight())
	}
	if _, ok := l.TryAcquire(1); !ok {
		t.Fatal("acquire after release must succeed")
	}
}

func TestLimiterWeights(t *testing.T) {
	l := NewLimiter(100)
	relA, ok := l.TryAcquire(60)
	if !ok {
		t.Fatal("60/100 must admit")
	}
	if _, ok := l.TryAcquire(50); ok {
		t.Fatal("60+50 > 100 must shed")
	}
	relB, ok := l.TryAcquire(40)
	if !ok {
		t.Fatal("60+40 = 100 must admit")
	}
	relA()
	relB()
	// an over-capacity batch is admitted only when idle.
	relBig, ok := l.TryAcquire(500)
	if !ok {
		t.Fatal("oversized weight must admit on an idle limiter")
	}
	if _, ok := l.TryAcquire(1); ok {
		t.Fatal("nothing may ride alongside an oversized admission")
	}
	relBig()
}

// TestLimiterZeroWeight: an empty batch still occupies one admission
// unit — a flood of zero-phrase requests must not bypass the limiter.
func TestLimiterZeroWeight(t *testing.T) {
	l := NewLimiter(2)
	relA, ok := l.TryAcquire(0)
	if !ok {
		t.Fatal("zero weight must admit")
	}
	if got := l.InFlight(); got != 1 {
		t.Fatalf("zero-weight admission costs %d, want 1", got)
	}
	relB, ok := l.TryAcquire(-5)
	if !ok {
		t.Fatal("negative weight must admit (as 1)")
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	if _, ok := l.TryAcquire(0); ok {
		t.Fatal("limiter at capacity must shed even zero-weight work")
	}
	relA()
	relB()
}

// TestLimiterHugeWeightNoOverflow: a weight near MaxInt must shed on a
// busy limiter, not wrap inflight+w negative and slip past the check.
func TestLimiterHugeWeightNoOverflow(t *testing.T) {
	l := NewLimiter(100)
	rel, ok := l.TryAcquire(1)
	if !ok {
		t.Fatal("1/100 must admit")
	}
	if _, ok := l.TryAcquire(math.MaxInt); ok {
		t.Fatal("MaxInt weight on a busy limiter must shed, not overflow")
	}
	rel()
	// idle limiter still takes the oversized request (documented
	// behavior — otherwise it could never run).
	relBig, ok := l.TryAcquire(math.MaxInt)
	if !ok {
		t.Fatal("oversized weight must admit on an idle limiter")
	}
	if _, ok := l.TryAcquire(1); ok {
		t.Fatal("nothing may ride alongside an oversized admission")
	}
	relBig()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

// TestShedJSONRetryAfter pins the shed response contract: 429, a
// whole-second Retry-After (minimum 1), and a JSON error body.
func TestShedJSONRetryAfter(t *testing.T) {
	w := httptest.NewRecorder()
	ShedJSON(w, 2*time.Second)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "retry after 2s") {
		t.Fatalf("body = %s", w.Body.String())
	}
	// sub-second hints round up to the 1s floor.
	w = httptest.NewRecorder()
	ShedJSON(w, 50*time.Millisecond)
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After floor = %q, want \"1\"", got)
	}
}

// TestLimiterSaturated: the degraded-mode signal tracks headroom
// exactly — false with any capacity left, true at or beyond the
// bound, and never true for unlimited or nil limiters.
func TestLimiterSaturated(t *testing.T) {
	l := NewLimiter(2)
	if l.Saturated() {
		t.Fatal("idle limiter saturated")
	}
	rel1, _ := l.TryAcquire(1)
	if l.Saturated() {
		t.Fatal("half-full limiter saturated")
	}
	rel2, _ := l.TryAcquire(1)
	if !l.Saturated() {
		t.Fatal("full limiter not saturated")
	}
	rel2()
	if l.Saturated() {
		t.Fatal("saturation did not clear on release")
	}
	rel1()
	// an over-capacity admit (idle limiter, huge weight) saturates too.
	relBig, ok := l.TryAcquire(100)
	if !ok || !l.Saturated() {
		t.Fatal("over-capacity admission should saturate")
	}
	relBig()
	var nilL *Limiter
	if nilL.Saturated() || NewLimiter(0).Saturated() {
		t.Fatal("nil/unlimited limiter can never saturate")
	}
}

func TestLimiterUnlimitedAndNil(t *testing.T) {
	for _, l := range []*Limiter{nil, NewLimiter(0)} {
		rel, ok := l.TryAcquire(1 << 30)
		if !ok {
			t.Fatal("unlimited limiter must always admit")
		}
		rel()
	}
}

func TestLimiterConcurrentAccounting(t *testing.T) {
	l := NewLimiter(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if rel, ok := l.TryAcquire(3); ok {
					if n := l.InFlight(); n > 8 {
						t.Errorf("inflight %d exceeds capacity", n)
					}
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if l.InFlight() != 0 {
		t.Fatalf("inflight = %d after all releases", l.InFlight())
	}
}

func TestShedJSON(t *testing.T) {
	w := httptest.NewRecorder()
	ShedJSON(w, 2*time.Second)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d", w.Code)
	}
	if w.Header().Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q", w.Header().Get("Retry-After"))
	}
	w = httptest.NewRecorder()
	ShedJSON(w, 0)
	if w.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After floor = %q", w.Header().Get("Retry-After"))
	}
}

func TestBackoffDelaysDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Attempts: 5, Jitter: 0.5, Seed: 42}
	a1, a2 := b.Delays(), b.Delays()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a1) != 4 {
		t.Fatalf("want 4 gaps, got %d", len(a1))
	}
	for i, d := range a1 {
		base := 10 * time.Millisecond << uint(i)
		if base > 40*time.Millisecond {
			base = 40 * time.Millisecond
		}
		if d < base || d > base+base/2 {
			t.Fatalf("gap %d = %v outside [%v, %v]", i, d, base, base+base/2)
		}
	}
	b.Seed = 43
	if reflect.DeepEqual(a1, b.Delays()) {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestBackoffJitterSpreadDeterministic pins the JitterSpread mode the
// breaker's half-open probe spacing uses: same seed ⇒ identical
// schedule, every delay inside [1-J/2, 1+J/2]·nominal, and schedules
// keyed off different seeds diverge.
func TestBackoffJitterSpreadDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond,
		Attempts: 6, Jitter: 0.5, Mode: JitterSpread, Seed: 7}
	a1, a2 := b.Delays(), b.Delays()
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different spread schedules")
	}
	if len(a1) != 5 {
		t.Fatalf("want 5 gaps, got %d", len(a1))
	}
	sawShrunk := false
	for i, d := range a1 {
		nominal := 100 * time.Millisecond << uint(i)
		if nominal > 400*time.Millisecond {
			nominal = 400 * time.Millisecond
		}
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("gap %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		if d < nominal {
			sawShrunk = true
		}
	}
	if !sawShrunk {
		// Spread must be able to shorten delays — that is what
		// distinguishes it from the grow-only stretch mode. With 5
		// draws at seed 7 at least one lands below nominal.
		t.Fatal("JitterSpread never produced a delay below nominal")
	}
	b.Seed = 8
	if reflect.DeepEqual(a1, b.Delays()) {
		t.Fatal("different seeds produced identical spread jitter")
	}
}

// TestBackoffJitterModeDefaultUnchanged pins that the zero-value Mode
// is the original stretch behavior: adding the Mode field must not
// alter any pre-existing schedule.
func TestBackoffJitterModeDefaultUnchanged(t *testing.T) {
	base := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Attempts: 5, Jitter: 0.5, Seed: 42}
	explicit := base
	explicit.Mode = JitterStretch
	if !reflect.DeepEqual(base.Delays(), explicit.Delays()) {
		t.Fatal("zero-value Mode differs from explicit JitterStretch")
	}
	for i, d := range base.Delays() {
		nominal := 10 * time.Millisecond << uint(i)
		if nominal > 40*time.Millisecond {
			nominal = 40 * time.Millisecond
		}
		if d < nominal {
			t.Fatalf("stretch mode shrank gap %d to %v (< %v)", i, d, nominal)
		}
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	var slept []time.Duration
	b := Backoff{Base: time.Millisecond, Attempts: 4, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := Retry(context.Background(), b, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v calls = %d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	wantErr := errors.New("permanent")
	calls := 0
	b := Backoff{Base: time.Microsecond, Attempts: 3, Sleep: func(time.Duration) {}}
	if err := Retry(context.Background(), b, func(context.Context) error {
		calls++
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	b := Backoff{Base: time.Hour, Attempts: 10} // real clock: must not actually sleep an hour
	err := Retry(ctx, b, func(context.Context) error {
		calls++
		cancel()
		return errors.New("failing")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err = %v calls = %d (cancellation must stop retries)", err, calls)
	}

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := Retry(cancelled, Backoff{}, func(context.Context) error {
		t.Fatal("fn must not run under a dead context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
}

// TestRetryCancelDuringBackoffReturnsCtxErr pins the mid-backoff
// cancellation contract: a context that dies while Retry is sleeping
// between attempts must surface promptly as ctx.Err() — joined with
// fn's last error so neither cause is lost — and fn must not run
// again. (Cancellation *between* attempts was already covered; the
// delay window is the gap this test closes.)
func TestRetryCancelDuringBackoffReturnsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("transient")
	calls := 0
	b := Backoff{
		Base:     time.Hour, // real sleeps would hang the test; Sleep below never does
		Attempts: 5,
		Sleep: func(time.Duration) {
			// The cancellation lands mid-delay: Retry is inside its
			// backoff sleep when the context dies.
			cancel()
		},
	}
	err := Retry(ctx, b, func(context.Context) error {
		calls++
		return transient
	})
	if calls != 1 {
		t.Fatalf("fn ran %d times; cancellation during backoff must stop retries", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want fn's last error joined in", err)
	}

	// The real-clock variant: a timer-based sleep must return promptly
	// (well under the hour-long delay) once the context dies.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx2, Backoff{Base: time.Hour, Attempts: 5}, func(context.Context) error {
			calls++
			cancel2() // dies before the first backoff delay starts
			return transient
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) || calls != 1 {
			t.Fatalf("err = %v calls = %d", err, calls)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return promptly after cancellation during its backoff delay")
	}
}
