// Package rules is the deterministic fallback annotation tier (DESIGN
// §15): a pure gazetteer/pattern tagger over the internal/gazetteer
// lexicons that emits the same IngredientRecord shape as the CRF
// pipeline — no model weights, no training artifacts, microsecond
// decodes. It exists to keep annotation endpoints answering 200 when
// the CRF tier is unhealthy: cooking-with-context (SNIPPETS.md §3)
// shows the recipe label set is largely recoverable from dictionaries
// and surface patterns alone, and the breaker-routed server leans on
// exactly that independence — nothing the rules tier needs can be
// poisoned by a bad model reload.
//
// Tagging is greedy leftmost-longest over four signal sources:
// quantity patterns (digits, vulgar and spelled fractions, ranges —
// fraction.Looks), unit terms with a plural/abbreviation fold
// ("cups"→"cup", "tbsp"→tablespoon class), the multiword ingredient/
// state/size/temp/dry-fresh lexicons via Lexicon.MatchAt, and one
// context rule: on a length tie, a unit reading wins directly after a
// quantity ("2 cloves garlic") while the ingredient reading wins
// elsewhere ("garlic clove"). Each phrase gets a confidence score —
// the fraction of content tokens covered by some span, zeroed when no
// NAME was found — which the server uses to gate healthy-mode routing
// and agreement audits.
//
// The span-matching core (AppendTag) allocates nothing: candidate
// assembly reuses pooled byte scratch, lexicon probes are
// map[string(bytes)] lookups, and plural folding goes through
// lemma.AppendAuto. Record assembly on top of it allocates only the
// record's own strings.
package rules

import (
	"strings"
	"sync"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/fraction"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/lemma"
	"recipemodel/internal/ner"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/tokenize"
)

// FaultAnnotate fires at the top of every Annotate call — the drill
// hook for "the rules tier is down too": an injected error surfaces as
// the annotation error, which the server maps to the final shed rung.
const FaultAnnotate = "rules.annotate"

var _ = faults.MustRegister(FaultAnnotate)

// unitAbbrev folds the common measurement abbreviations onto their
// lexicon terms. Keys are lower-case as they appear post-tokenization
// (the tokenizer splits a trailing period off "tbsp." already).
var unitAbbrev = map[string]string{
	"tbsp": "tablespoon",
	"tbs":  "tablespoon",
	"tsp":  "teaspoon",
	"oz":   "ounce",
	"lb":   "pound",
	"lbs":  "pound",
	"pt":   "pint",
	"qt":   "quart",
	"gal":  "gallon",
	"g":    "gram",
	"kg":   "kilogram",
	"ml":   "milliliter",
	"pkg":  "package",
}

// Tagger is the rule-tier annotator. It is immutable after New and
// safe for concurrent use; all per-call state lives in pooled scratch.
type Tagger struct {
	ing   *gazetteer.Lexicon
	units *gazetteer.Lexicon
	state *gazetteer.Lexicon
	size  *gazetteer.Lexicon
	temp  *gazetteer.Lexicon
	dry   *gazetteer.Lexicon
	lem   *lemma.Lemmatizer
}

// New builds a Tagger over the standard domain lexicons.
func New() *Tagger {
	return &Tagger{
		ing:   gazetteer.Ingredients(),
		units: gazetteer.Units(),
		state: gazetteer.States(),
		size:  gazetteer.Sizes(),
		temp:  gazetteer.Temperatures(),
		dry:   gazetteer.DryFresh(),
		lem:   lemma.New(),
	}
}

// scratch carries one Annotate call's buffers; length-reset before
// use, fully overwritten before read (same recycling contract as
// core's annScratch).
type scratch struct {
	toks  []tokenize.Token
	words []string
	spans []ner.Span
}

// tagScratch is the zero-alloc matching state shared by AppendTag.
type tagScratch struct {
	cand []byte // lexicon candidate assembly
	word []byte // copy of the word being folded (AppendAuto input)
	lemb []byte // plural-folded last word (AppendAuto output)
}

var pool = sync.Pool{New: func() any {
	return &scratch{
		toks:  make([]tokenize.Token, 0, 64),
		words: make([]string, 0, 64),
		spans: make([]ner.Span, 0, 16),
	}
}}

// Annotate runs the full rule tier over one raw phrase: sanitize
// (identical policy and typed rejections as the CRF path — a phrase
// poisonous to one tier is rejected identically by the other),
// tokenize, tag, and assemble an IngredientRecord. The confidence in
// [0, 1] is the covered-content fraction described on Confidence.
func (t *Tagger) Annotate(phrase string) (core.IngredientRecord, float64, error) {
	if err := faults.Inject(FaultAnnotate); err != nil {
		return core.IngredientRecord{Phrase: phrase}, 0, err
	}
	clean, err := core.Sanitize(phrase, core.DefaultSanitize)
	if err != nil {
		return core.IngredientRecord{Phrase: phrase}, 0, err
	}
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	sc.toks = tokenize.AppendTo(sc.toks[:0], clean)
	sc.words = sc.words[:0]
	for _, tok := range sc.toks {
		sc.words = append(sc.words, strings.ToLower(tok.Text))
	}
	if len(sc.words) == 0 {
		return core.IngredientRecord{Phrase: phrase}, 0, quarantine.ErrEmptyAfterClean
	}
	if len(sc.words) > core.DefaultMaxPhraseTokens {
		return core.IngredientRecord{Phrase: phrase}, 0, quarantine.Errorf(quarantine.CodeTooManyTokens,
			"phrase has %d tokens, cap %d", len(sc.words), core.DefaultMaxPhraseTokens)
	}
	sc.spans = t.AppendTag(sc.spans[:0], sc.words)
	rec := core.RecordFromSpans(phrase, sc.words, sc.spans, t.lem)
	return rec, t.Confidence(sc.words, sc.spans), nil
}

// AppendTag appends rule-derived entity spans for the lower-cased
// token slice and returns the extended slice — the same shape as the
// CRF tagger's AppendPredict. The matching core performs zero
// allocations once spans has capacity (pinned by TestAppendTagZeroAlloc).
func (t *Tagger) AppendTag(spans []ner.Span, words []string) []ner.Span {
	sc := tagPool.Get().(*tagScratch)
	defer tagPool.Put(sc)
	afterQuantity := false
	for i := 0; i < len(words); {
		w := words[i]
		// Quantity pattern first: digits, ranges, vulgar/spelled
		// fractions and number words. The tokenizer has already glued
		// mixed numbers ("1 1/2") into one token.
		if fraction.Looks(w) {
			spans = append(spans, ner.Span{Start: i, End: i + 1, Type: ner.Quantity})
			afterQuantity = true
			i++
			continue
		}
		bestN, bestType := 0, ""
		consider := func(n int, typ string) {
			if n > bestN {
				bestN, bestType = n, typ
			}
		}
		un := t.matchUnit(words, i, sc)
		ing := t.matchFold(t.ing, words, i, sc)
		if afterQuantity {
			// "2 cloves garlic": directly after a quantity the unit
			// reading of an ambiguous word ("clove") wins a tie.
			consider(un, ner.Unit)
			consider(ing, ner.Name)
		} else {
			// "garlic clove": elsewhere the ingredient reading wins.
			consider(ing, ner.Name)
			consider(un, ner.Unit)
		}
		consider(t.state.MatchAt(words, i, &sc.cand), ner.State)
		consider(t.dry.MatchAt(words, i, &sc.cand), ner.DryFresh)
		consider(t.temp.MatchAt(words, i, &sc.cand), ner.Temp)
		consider(t.size.MatchAt(words, i, &sc.cand), ner.Size)
		if bestN == 0 {
			afterQuantity = false
			i++
			continue
		}
		spans = append(spans, ner.Span{Start: i, End: i + bestN, Type: bestType})
		afterQuantity = false
		i += bestN
	}
	return spans
}

var tagPool = sync.Pool{New: func() any {
	return &tagScratch{
		cand: make([]byte, 0, 128),
		word: make([]byte, 0, 32),
		lemb: make([]byte, 0, 32),
	}
}}

// matchFold is Lexicon.MatchAt with a plural fold on the last word of
// the candidate: "roma tomatoes" matches the term "roma tomato". The
// longer of the exact and folded matches wins.
func (t *Tagger) matchFold(lex *gazetteer.Lexicon, words []string, i int, sc *tagScratch) int {
	best := lex.MatchAt(words, i, &sc.cand)
	limit := lex.MaxWords()
	if rem := len(words) - i; rem < limit {
		limit = rem
	}
	for n := limit; n > best; n-- {
		last := words[i+n-1]
		sc.word = append(sc.word[:0], last...)
		sc.lemb = t.lem.AppendAuto(sc.lemb[:0], sc.word)
		if string(sc.lemb) == last {
			continue // no fold happened; exact probe already covered it
		}
		sc.cand = sc.cand[:0]
		for k := 0; k < n-1; k++ {
			sc.cand = append(sc.cand, words[i+k]...)
			sc.cand = append(sc.cand, ' ')
		}
		sc.cand = append(sc.cand, sc.lemb...)
		if lex.ContainsBytes(sc.cand) {
			return n
		}
	}
	return best
}

// matchUnit matches a measuring unit at words[i]: lexicon terms with
// the plural fold, plus the abbreviation table ("tbsp", "oz", ...).
func (t *Tagger) matchUnit(words []string, i int, sc *tagScratch) int {
	if n := t.matchFold(t.units, words, i, sc); n > 0 {
		return n
	}
	if _, ok := unitAbbrev[words[i]]; ok {
		return 1
	}
	return 0
}

// Confidence scores a tagging: the fraction of content tokens (tokens
// containing a letter or digit — punctuation doesn't count either
// way) covered by some span. A tagging with no NAME span scores 0
// regardless of coverage: a record without an ingredient name is not
// a useful annotation, and the server must not route to it.
func (t *Tagger) Confidence(words []string, spans []ner.Span) float64 {
	content, covered := 0, 0
	hasName := false
	for _, s := range spans {
		if s.Type == ner.Name {
			hasName = true
		}
	}
	if !hasName {
		return 0
	}
	si := 0
	for i, w := range words {
		if !isContent(w) {
			continue
		}
		content++
		for si < len(spans) && spans[si].End <= i {
			si++
		}
		if si < len(spans) && spans[si].Start <= i && i < spans[si].End {
			covered++
		}
	}
	if content == 0 {
		return 0
	}
	return float64(covered) / float64(content)
}

// isContent reports whether a token carries annotatable content (at
// least one letter or digit).
func isContent(w string) bool {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c >= 0x80 {
			return true
		}
	}
	return false
}
