package rules

import (
	"errors"
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/ner"
	"recipemodel/internal/quarantine"
)

func TestAnnotateRecords(t *testing.T) {
	tg := New()
	cases := []struct {
		phrase string
		want   core.IngredientRecord
		conf   float64 // minimum acceptable confidence
	}{
		{
			phrase: "2 cups onion, finely chopped",
			want: core.IngredientRecord{
				Phrase: "2 cups onion, finely chopped",
				Name:   "onion", Quantity: "2", Unit: "cups", State: "finely chopped",
			},
			conf: 1,
		},
		{
			phrase: "1 tbsp butter",
			want: core.IngredientRecord{
				Phrase: "1 tbsp butter",
				Name:   "butter", Quantity: "1", Unit: "tbsp",
			},
			conf: 1,
		},
		{
			// "clove" is in both the unit and ingredient lexicons: the
			// reading after a quantity is the unit, the trailing word
			// the name.
			phrase: "2 cloves garlic",
			want: core.IngredientRecord{
				Phrase: "2 cloves garlic",
				Name:   "garlic", Quantity: "2", Unit: "cloves",
			},
			conf: 1,
		},
		{
			// Mixed number stays one quantity token; multiword
			// hyphenated ingredient matches whole.
			phrase: "1 1/2 cups all-purpose flour",
			want: core.IngredientRecord{
				Phrase: "1 1/2 cups all-purpose flour",
				Name:   "all-purpose flour", Quantity: "1 1/2", Unit: "cups",
			},
			conf: 1,
		},
		{
			phrase: "fresh ground black pepper",
			want: core.IngredientRecord{
				Phrase: "fresh ground black pepper",
				Name:   "black pepper", State: "ground", DryFresh: "fresh",
			},
			conf: 1,
		},
		{
			// Plural ingredient folds onto its singular lexicon term
			// and the record head noun is lemmatized like the CRF path.
			phrase: "3 large tomatoes",
			want: core.IngredientRecord{
				Phrase: "3 large tomatoes",
				Name:   "tomato", Quantity: "3", Size: "large",
			},
			conf: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.phrase, func(t *testing.T) {
			rec, conf, err := tg.Annotate(tc.phrase)
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			if rec != tc.want {
				t.Fatalf("record = %+v\nwant     %+v", rec, tc.want)
			}
			if conf < tc.conf {
				t.Fatalf("confidence = %v, want >= %v", conf, tc.conf)
			}
		})
	}
}

// TestAnnotateCaseAndUnicode: tagging is case-insensitive and the
// sanitizer runs the same policy as the CRF path (NBSP collapses).
func TestAnnotateCaseAndUnicode(t *testing.T) {
	tg := New()
	rec, conf, err := tg.Annotate("2 Cups ONION")
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if rec.Name != "onion" || rec.Unit != "cups" || rec.Quantity != "2" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Phrase != "2 Cups ONION" {
		t.Fatalf("raw phrase not echoed: %q", rec.Phrase)
	}
	if conf != 1 {
		t.Fatalf("confidence = %v", conf)
	}
}

// TestAnnotateConfidencePartial: uncovered content tokens lower the
// score; a tagging with no NAME span scores zero outright.
func TestAnnotateConfidencePartial(t *testing.T) {
	tg := New()
	_, conf, err := tg.Annotate("2 cups glorbified onion")
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if conf <= 0 || conf >= 1 {
		t.Fatalf("confidence = %v, want in (0, 1) with one unknown token", conf)
	}
	_, conf, err = tg.Annotate("2 cups of nothing recognizable here")
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if conf != 0 {
		t.Fatalf("confidence without a NAME span = %v, want 0", conf)
	}
}

// TestAnnotateRejections: the rules tier rejects poison identically to
// the CRF path — same typed quarantine codes, same messages — so a
// degraded server's 422s are indistinguishable from healthy ones.
func TestAnnotateRejections(t *testing.T) {
	tg := New()
	if _, _, err := tg.Annotate("   "); !errors.Is(err, quarantine.ErrEmptyAfterClean) {
		t.Fatalf("whitespace phrase: err = %v", err)
	}
	if _, _, err := tg.Annotate(strings.Repeat("a ", 70000)); !errors.Is(err, quarantine.ErrTooLong) {
		t.Fatalf("oversized phrase: err = %v", err)
	}
	if _, _, err := tg.Annotate(strings.Repeat("word ", 600)); !errors.Is(err, quarantine.ErrTooManyTokens) {
		t.Fatalf("token-cap phrase: err = %v", err)
	}
	// Rejection equality with the CRF containment path, message and
	// all: the pre-model stages (sanitize, token caps) reject before
	// any pipeline state is touched.
	phrase := strings.Repeat("word ", 600)
	_, rerr := (*core.Pipeline)(nil).AnnotateIngredientChecked(phrase)
	_, _, terr := tg.Annotate(phrase)
	if rerr == nil || terr == nil || rerr.Error() != terr.Error() {
		t.Fatalf("rejection mismatch:\ncrf:   %v\nrules: %v", rerr, terr)
	}
}

// TestAnnotateFaultPoint: rules.annotate kills the tier on command.
func TestAnnotateFaultPoint(t *testing.T) {
	defer faults.Reset()
	boom := errors.New("rules tier down")
	disable := faults.Enable(FaultAnnotate, faults.Fault{Err: boom})
	_, _, err := New().Annotate("2 cups onion")
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
	disable()
	if _, _, err := New().Annotate("2 cups onion"); err != nil {
		t.Fatalf("err after disable = %v", err)
	}
}

// TestAppendTagZeroAlloc pins the hot-path contract: span matching
// over pre-lowered words allocates nothing once the span slice has
// capacity.
func TestAppendTagZeroAlloc(t *testing.T) {
	tg := New()
	words := []string{"2", "cups", "extra", "virgin", "olive", "oil", ",", "finely", "chopped"}
	spans := make([]ner.Span, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		spans = tg.AppendTag(spans[:0], words)
	})
	if allocs != 0 {
		t.Fatalf("AppendTag allocates %.1f/op, want 0", allocs)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
}

// TestAppendTagGreedyLeftmost pins span shapes directly, including
// the leftmost-longest interaction between overlapping lexicon terms.
func TestAppendTagGreedyLeftmost(t *testing.T) {
	tg := New()
	words := []string{"extra", "virgin", "olive", "oil"}
	spans := tg.AppendTag(nil, words)
	if len(spans) != 1 || spans[0] != (ner.Span{Start: 0, End: 4, Type: ner.Name}) {
		t.Fatalf("spans = %+v, want one 4-word NAME", spans)
	}
	// Unit tie-break flips with quantity context.
	after := tg.AppendTag(nil, []string{"1", "clove"})
	if len(after) != 2 || after[1].Type != ner.Unit {
		t.Fatalf("post-quantity clove: %+v, want UNIT", after)
	}
	alone := tg.AppendTag(nil, []string{"garlic", "clove"})
	if len(alone) == 0 || alone[0].Type != ner.Name {
		t.Fatalf("bare garlic clove: %+v, want NAME", alone)
	}
}

func BenchmarkRulesAnnotate(b *testing.B) {
	tg := New()
	phrases := []string{
		"2 cups onion, finely chopped",
		"1 1/2 tbsp extra virgin olive oil",
		"3 cloves garlic, minced",
		"fresh ground black pepper to taste",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tg.Annotate(phrases[i%len(phrases)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRulesAppendTag(b *testing.B) {
	tg := New()
	words := []string{"2", "cups", "extra", "virgin", "olive", "oil", ",", "finely", "chopped"}
	spans := make([]ner.Span, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spans = tg.AppendTag(spans[:0], words)
	}
}
