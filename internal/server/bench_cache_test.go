package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recipemodel"
	"recipemodel/internal/core"
	"recipemodel/internal/quarantine"
)

// benchAdapter bridges the public trained Pipeline to the server's
// interface (the same shim cmd/recipeserver uses); the benchmarks run
// the real compiled decode path, not a stub, so the cached/uncached
// ratio is the one an operator would see. It counts decodes so the
// benches can report model work per request alongside wall time —
// the number the cache actually moves when serialization, not the
// model, is the end-to-end floor.
type benchAdapter struct {
	p       *recipemodel.Pipeline
	decodes *atomic.Int64
}

func (a benchAdapter) AnnotateIngredient(phrase string) core.IngredientRecord {
	return a.p.AnnotateIngredient(phrase)
}

func (a benchAdapter) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	a.decodes.Add(1)
	return a.p.AnnotateIngredientChecked(phrase)
}

func (a benchAdapter) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error) {
	a.decodes.Add(int64(len(phrases)))
	return a.p.AnnotateIngredientsContext(ctx, phrases)
}

func (a benchAdapter) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	a.decodes.Add(int64(len(phrases)))
	return a.p.AnnotateIngredientsPartial(ctx, phrases)
}

func (a benchAdapter) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error) {
	return a.p.ModelRecipeContext(ctx, title, cuisine, ingredientLines, instructions)
}

var (
	benchPipeOnce sync.Once
	benchPipe     *recipemodel.Pipeline
	benchPipeErr  error
)

// trainedPipe trains one real pipeline for all benchmarks in the
// package (training cost is paid once, outside any timer) and hands
// each benchmark its own decode counter.
func trainedPipe(b *testing.B) benchAdapter {
	b.Helper()
	benchPipeOnce.Do(func() {
		benchPipe, benchPipeErr = recipemodel.NewPipeline(recipemodel.DefaultOptions())
	})
	if benchPipeErr != nil {
		b.Fatal(benchPipeErr)
	}
	return benchAdapter{p: benchPipe, decodes: new(atomic.Int64)}
}

// mix64 is splitmix64 — a deterministic index hash so the traffic mix
// is identical on every run and both sides of every comparison.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// heavyTailMix builds the 90%-duplicate request stream of DESIGN §13:
// 90% of requests draw from 20 hot phrases, 10% from a 2000-phrase
// tail that itself repeats across the stream — so at steady state the
// cache absorbs nearly everything, which is exactly the regime the
// tentpole is built for.
func heavyTailMix(n int) []string {
	hot := make([]string, 20)
	for i := range hot {
		hot[i] = fmt.Sprintf("%d cups chopped onion variant %d", 1+i%4, i)
	}
	tail := make([]string, 2000)
	for i := range tail {
		tail[i] = fmt.Sprintf("%d tbsp minced garlic batch %d", 1+i%6, i)
	}
	out := make([]string, n)
	for i := range out {
		h := mix64(uint64(i))
		if h%10 < 9 {
			out[i] = hot[(h>>8)%uint64(len(hot))]
		} else {
			out[i] = tail[(h>>8)%uint64(len(tail))]
		}
	}
	return out
}

// serveAnnotateMix drives b.N /annotate requests from the mix through
// h, reporting p99 latency, request throughput, and decodes per 1000
// requests alongside ns/op.
func serveAnnotateMix(b *testing.B, h http.Handler, pipe benchAdapter, mix []string) {
	b.Helper()
	bodies := make([]string, len(mix))
	for i, p := range mix {
		bodies[i] = annotateBody(p)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	decodesBefore := pipe.decodes.Load()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate", strings.NewReader(bodies[i%len(bodies)])))
		lat = append(lat, time.Since(start))
		if w.Code != 200 {
			b.Fatalf("annotate = %d %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	b.ReportMetric(float64(time.Second)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "req/s")
	b.ReportMetric(float64(pipe.decodes.Load()-decodesBefore)*1000/float64(b.N), "decodes/1000req")
}

// BenchmarkAnnotateHeavyTailUncached is the baseline: every request
// decodes, even the 90% duplicates.
func BenchmarkAnnotateHeavyTailUncached(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{})
	s.SetReady(true)
	serveAnnotateMix(b, s, pipe, heavyTailMix(65536))
}

// BenchmarkAnnotateHeavyTailCached is the tentpole number: same mix,
// default cache bound — steady-state miss rate is the tail churn only.
func BenchmarkAnnotateHeavyTailCached(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 64 << 10})
	s.SetReady(true)
	serveAnnotateMix(b, s, pipe, heavyTailMix(65536))
}

// BenchmarkAnnotateHotHitCached is the floor of the cached path: one
// phrase, always hit — pure lookup + serialization cost.
func BenchmarkAnnotateHotHitCached(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 64 << 10})
	s.SetReady(true)
	serveAnnotateMix(b, s, pipe, []string{"2 cups chopped onion"})
}

// serveBatchMix drives b.N /annotate/batch requests of batchSize
// phrases each, reporting per-phrase throughput and decode work.
func serveBatchMix(b *testing.B, h http.Handler, pipe benchAdapter, mix []string, batchSize int) {
	b.Helper()
	var bodies []string
	for at := 0; at+batchSize <= len(mix); at += batchSize {
		var sb strings.Builder
		sb.WriteString(`{"phrases":[`)
		for j, p := range mix[at : at+batchSize] {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%q", p)
		}
		sb.WriteString(`]}`)
		bodies = append(bodies, sb.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	decodesBefore := pipe.decodes.Load()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate/batch", strings.NewReader(bodies[i%len(bodies)])))
		if w.Code != 200 {
			b.Fatalf("batch = %d %.200s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(batchSize)/b.Elapsed().Seconds(), "phrases/s")
	b.ReportMetric(float64(pipe.decodes.Load()-decodesBefore)*1000/(float64(b.N)*float64(batchSize)), "decodes/1000phrases")
}

// BenchmarkBatchHeavyTailUncached / Cached: the same 90%-duplicate
// stream chunked into 512-phrase batches, where the cached side also
// exercises in-batch dedup.
func BenchmarkBatchHeavyTailUncached(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{})
	s.SetReady(true)
	serveBatchMix(b, s, pipe, heavyTailMix(65536), 512)
}

func BenchmarkBatchHeavyTailCached(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 64 << 10})
	s.SetReady(true)
	serveBatchMix(b, s, pipe, heavyTailMix(65536), 512)
}

// BenchmarkDegradedHitServing measures the overload posture: the
// limiter is fully saturated (its one unit held by the bench itself),
// yet hot-phrase requests keep answering from cache — the number an
// operator compares against the 429s everyone else gets.
func BenchmarkDegradedHitServing(b *testing.B) {
	pipe := trainedPipe(b)
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 64 << 10, MaxInFlight: 1})
	s.SetReady(true)
	// warm the hot set while the limiter is idle.
	for _, p := range heavyTailMix(4096) {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate", strings.NewReader(annotateBody(p))))
		if w.Code != 200 {
			b.Fatalf("warm-up = %d", w.Code)
		}
	}
	release, ok := s.limiter.TryAcquire(1)
	if !ok {
		b.Fatal("could not saturate limiter")
	}
	defer release()
	if !s.limiter.Saturated() {
		b.Fatal("limiter not saturated")
	}
	serveAnnotateMix(b, s, pipe, heavyTailMix(4096))
	if s.degradedHits.Load() == 0 {
		b.Fatal("no degraded hits recorded")
	}
}
