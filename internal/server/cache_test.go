package server

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"recipemodel/internal/cache"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/flight"
	"recipemodel/internal/quarantine"
)

// countingPipe is a deterministic Pipeline stub whose record fields
// are a pure function of the phrase's canonical key — exactly the
// property the real pipeline has (it decodes the sanitized phrase)
// and the one the cache's Phrase-rewrite contract rests on. The Name
// field embeds the pipe's tag, so a differential test can tell which
// model (v1 vs a reloaded v2) produced a response, and the Phrase
// field echoes the raw request phrase like the real pipeline does.
type countingPipe struct {
	tag     string
	decodes atomic.Int64 // Checked + per-phrase Partial decodes
	// slow, when non-nil, blocks decodes of phrases with the "slow:"
	// prefix until the channel closes — the deterministic saturated-
	// limiter prop for the degraded-mode tests.
	slow chan struct{}
}

// result is the pure decode: no counting, no gate (also serves the
// reload canary, which must not skew decode counts).
func (c *countingPipe) result(phrase string) (core.IngredientRecord, error) {
	if err := poison(phrase); err != nil {
		return core.IngredientRecord{Phrase: phrase}, err
	}
	key, err := core.CanonicalKey(phrase)
	if err != nil {
		return core.IngredientRecord{Phrase: phrase}, err
	}
	return core.IngredientRecord{
		Phrase:   phrase,
		Name:     c.tag + ":" + key,
		Quantity: strconv.Itoa(len(key)),
		Unit:     "cups",
	}, nil
}

func (c *countingPipe) decode(phrase string) (core.IngredientRecord, error) {
	c.decodes.Add(1)
	if c.slow != nil && strings.HasPrefix(phrase, "slow:") {
		<-c.slow
	}
	return c.result(phrase)
}

func (c *countingPipe) AnnotateIngredient(phrase string) core.IngredientRecord {
	rec, _ := c.result(phrase)
	return rec
}

func (c *countingPipe) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	return c.decode(phrase)
}

func (c *countingPipe) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error) {
	out := make([]core.IngredientRecord, len(phrases))
	for i, p := range phrases {
		out[i], _ = c.decode(p)
	}
	return out, ctx.Err()
}

func (c *countingPipe) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	out := make([]core.IngredientRecord, len(phrases))
	var rejs []quarantine.Rejection
	for i, p := range phrases {
		rec, err := c.decode(p)
		if err != nil {
			rejs = append(rejs, quarantine.Reject(i, p, err))
			continue
		}
		out[i] = rec
	}
	return out, rejs, ctx.Err()
}

func (c *countingPipe) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error) {
	return &core.RecipeModel{Title: title, Cuisine: cuisine}, ctx.Err()
}

// canaryFor pins the golden set to a pipe tag so reload tests can
// adopt candidates from the same stub family.
func canaryFor(tag string) []core.CanaryCase {
	return []core.CanaryCase{{Phrase: "2 cups onion", WantName: tag + ":2 cups onion"}}
}

// waitUntil spins until cond holds — clock-free (conditions are
// monotone under a held fault gate).
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; !cond(); i++ {
		if i > 1e8 {
			t.Fatal("condition never became true")
		}
		runtime.Gosched()
	}
}

func annotateBody(phrase string) string {
	b, _ := json.Marshal(map[string]string{"phrase": phrase})
	return string(b)
}

// TestCacheHitSkipsDecode: the memoization contract plus its /readyz
// observability — second identical request decodes nothing, counters
// move, generation reports.
func TestCacheHitSkipsDecode(t *testing.T) {
	pipe := &countingPipe{tag: "v1"}
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 128})
	s.SetReady(true)

	w1 := do(t, s, http.MethodPost, "/annotate", annotateBody("2 cups onion"))
	w2 := do(t, s, http.MethodPost, "/annotate", annotateBody("2 cups onion"))
	if w1.Code != 200 || w2.Code != 200 {
		t.Fatalf("codes = %d, %d", w1.Code, w2.Code)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatalf("hit body diverged:\n%s\nvs\n%s", w1.Body.String(), w2.Body.String())
	}
	if got := pipe.decodes.Load(); got != 1 {
		t.Fatalf("decodes = %d, want 1", got)
	}
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Cache.Enabled || ready.Cache.Hits != 1 || ready.Cache.Generation != 1 {
		t.Fatalf("cache status = %+v", ready.Cache)
	}
	if ready.Cache.Misses == 0 || ready.Cache.Entries != 1 {
		t.Fatalf("cache status = %+v", ready.Cache)
	}
}

// TestCacheOffDecodesEveryRequest: CacheEntries 0 restores the
// decode-per-request behavior and reports disabled on /readyz.
func TestCacheOffDecodesEveryRequest(t *testing.T) {
	pipe := &countingPipe{tag: "v1"}
	s := NewWithConfig(pipe, nil, Config{})
	s.SetReady(true)
	do(t, s, http.MethodPost, "/annotate", annotateBody("salt"))
	do(t, s, http.MethodPost, "/annotate", annotateBody("salt"))
	if got := pipe.decodes.Load(); got != 2 {
		t.Fatalf("decodes = %d, want 2", got)
	}
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Cache.Enabled {
		t.Fatal("cache reported enabled on an uncached server")
	}
}

// differentialPhrases is a request mix covering every response shape:
// hot duplicates, canonical-key variants (NBSP, zero-width space)
// that share a cache entry but echo different raw bytes, quarantine
// rejections (whitespace-only, contained panic, over-cap), and cold
// singletons.
func differentialPhrases() []string {
	return []string{
		"2 cups onion",
		"salt",
		"2 cups onion",
		"2 cups onion", // NBSP variant: same canonical key, different raw bytes
		"   ",           // empty_after_clean rejection
		"panic:boom",    // contained tagger panic rejection
		"1 tbsp butter",
		"salt",
		"2 eggs",
		strings.Repeat("a", 100<<10), // over the 64 KiB phrase cap: too_long rejection
		"2 eggs",
		"salt",
	}
}

// TestCachedResponsesByteIdenticalToUncached is the differential
// contract of DESIGN §13: for any request mix, the cached server's
// responses are byte-for-byte the uncached server's — including
// rejection payloads and raw-phrase echoes on shared cache entries.
func TestCachedResponsesByteIdenticalToUncached(t *testing.T) {
	cached := NewWithConfig(&countingPipe{tag: "m"}, nil, Config{CacheEntries: 128})
	uncached := NewWithConfig(&countingPipe{tag: "m"}, nil, Config{})
	for _, s := range []*Server{cached, uncached} {
		s.SetReady(true)
	}
	// two passes so the second pass serves from a warm cache.
	for pass := 0; pass < 2; pass++ {
		for i, phrase := range differentialPhrases() {
			body := annotateBody(phrase)
			wc := do(t, cached, http.MethodPost, "/annotate", body)
			wu := do(t, uncached, http.MethodPost, "/annotate", body)
			if wc.Code != wu.Code || wc.Body.String() != wu.Body.String() {
				t.Fatalf("pass %d request %d (%.40q): cached (%d, %s) vs uncached (%d, %s)",
					pass, i, phrase, wc.Code, wc.Body.String(), wu.Code, wu.Body.String())
			}
		}
	}
}

// TestCachedBatchByteIdenticalToUncached: same differential contract
// for the batch endpoint, whose cached path additionally deduplicates
// misses — the envelope (per-item statuses, roll-up counts, HTTP
// status) must not show it.
func TestCachedBatchByteIdenticalToUncached(t *testing.T) {
	cached := NewWithConfig(&countingPipe{tag: "m"}, nil, Config{CacheEntries: 128})
	uncached := NewWithConfig(&countingPipe{tag: "m"}, nil, Config{})
	for _, s := range []*Server{cached, uncached} {
		s.SetReady(true)
	}
	phrases := differentialPhrases()
	body, _ := json.Marshal(map[string][]string{"phrases": phrases})
	for pass := 0; pass < 2; pass++ {
		wc := do(t, cached, http.MethodPost, "/annotate/batch", string(body))
		wu := do(t, uncached, http.MethodPost, "/annotate/batch", string(body))
		if wc.Code != wu.Code || wc.Body.String() != wu.Body.String() {
			t.Fatalf("pass %d: cached (%d) vs uncached (%d)\n--- cached ---\n%s\n--- uncached ---\n%s",
				pass, wc.Code, wu.Code, wc.Body.String(), wu.Body.String())
		}
	}
}

// TestBatchDedupDecodesUniqueMissesOnce: a batch dominated by one hot
// phrase decodes each distinct phrase once, and its admission weight
// is the deduplicated miss count — a 100-phrase batch fits through a
// 3-unit limiter that would shed it uncached.
func TestBatchDedupDecodesUniqueMissesOnce(t *testing.T) {
	pipe := &countingPipe{tag: "v1"}
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 128, MaxInFlight: 3})
	s.SetReady(true)
	phrases := make([]string, 0, 100)
	for i := 0; i < 50; i++ {
		phrases = append(phrases, "salt", "2 eggs")
	}
	body, _ := json.Marshal(map[string][]string{"phrases": phrases})
	w := do(t, s, http.MethodPost, "/annotate/batch", string(body))
	if w.Code != 200 {
		t.Fatalf("batch = %d body = %s", w.Code, w.Body.String())
	}
	if got := pipe.decodes.Load(); got != 2 {
		t.Fatalf("decodes = %d, want 2 (unique phrases)", got)
	}
	resp := decodeBatch(t, w)
	if resp.OK != 100 || resp.Rejected != 0 {
		t.Fatalf("roll-up = %+v", resp)
	}
	// warm batch: zero decodes, zero admission weight.
	before := pipe.decodes.Load()
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(body)); w.Code != 200 {
		t.Fatalf("warm batch = %d", w.Code)
	}
	if got := pipe.decodes.Load(); got != before {
		t.Fatalf("warm batch decoded %d times", got-before)
	}
}

// TestHerdCoalescesToOneDecode is the acceptance drill: a herd of
// 1000 concurrent identical misses performs exactly one decode. The
// flight.leader fault holds the leader until every other request has
// joined as a waiter (fault-point counted, no sleeps), pinning true
// coalescing rather than serial cache hits.
func TestHerdCoalescesToOneDecode(t *testing.T) {
	defer faults.Reset()
	const herd = 1000
	pipe := &countingPipe{tag: "v1"}
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 128})
	s.SetReady(true)

	release := make(chan struct{})
	faults.Enable(flight.FaultLeader, faults.Fault{OnHit: func(int) { <-release }})

	body := annotateBody("salt")
	codes := make(chan int, herd)
	bodies := make(chan string, herd)
	for i := 0; i < herd; i++ {
		go func() {
			w := do(t, s, http.MethodPost, "/annotate", body)
			codes <- w.Code
			bodies <- w.Body.String()
		}()
	}
	fkey := flightKey(1, "salt")
	waitUntil(t, func() bool { return s.flights.Waiters(fkey) == herd-1 })
	close(release)

	var first string
	for i := 0; i < herd; i++ {
		if code := <-codes; code != 200 {
			t.Fatalf("herd member = %d", code)
		}
		b := <-bodies
		if first == "" {
			first = b
		} else if b != first {
			t.Fatalf("herd bodies diverged:\n%s\nvs\n%s", first, b)
		}
	}
	if got := pipe.decodes.Load(); got != 1 {
		t.Fatalf("decodes = %d, want exactly 1", got)
	}
	if hits := faults.Hits(flight.FaultLeader); hits != 1 {
		t.Fatalf("flight.leader hits = %d, want 1 (one leader for the whole herd)", hits)
	}
}

// TestReloadDuringHerdNoStaleGenerationServed pins the
// reload-invalidation contract under load: a reload that lands while
// a herd's leader is still decoding with the old model bumps the
// generation atomically with the pipeline swap, so (a) the old
// leader's result is shared only with the herd that resolved the old
// state, (b) the very next request decodes fresh with the new model —
// the old generation's cache entry is never served again.
func TestReloadDuringHerdNoStaleGenerationServed(t *testing.T) {
	defer faults.Reset()
	const herd = 100
	v1 := &countingPipe{tag: "v1"}
	v2 := &countingPipe{tag: "v2"}
	s := NewWithConfig(v1, nil, Config{
		CacheEntries: 128,
		Loader:       func() (Pipeline, string, error) { return v2, "v2", nil },
		Canary:       canaryFor("v2"),
		ModelVersion: "v1",
	})
	s.SetReady(true)

	release := make(chan struct{})
	faults.Enable(flight.FaultLeader, faults.Fault{OnHit: func(int) { <-release }, Limit: 1})

	body := annotateBody("salt")
	bodies := make(chan string, herd)
	for i := 0; i < herd; i++ {
		go func() {
			w := do(t, s, http.MethodPost, "/annotate", body)
			if w.Code != 200 {
				t.Errorf("herd member = %d", w.Code)
			}
			bodies <- w.Body.String()
		}()
	}
	fkey := flightKey(1, "salt")
	waitUntil(t, func() bool { return s.flights.Waiters(fkey) == herd-1 })

	// reload mid-herd: the old leader is still "decoding".
	if version, err := s.Reload(); err != nil || version != "v2" {
		t.Fatalf("reload = (%q, %v)", version, err)
	}
	if gen := s.Generation(); gen != 2 {
		t.Fatalf("generation after reload = %d, want 2", gen)
	}
	close(release)

	// the held herd resolved the v1 state and must uniformly get v1.
	for i := 0; i < herd; i++ {
		b := <-bodies
		if !strings.Contains(b, `"v1:salt"`) {
			t.Fatalf("herd response not from v1: %s", b)
		}
	}
	// the old leader cached its result under generation 1; a fresh
	// request resolves generation 2 and must decode v2, never see it.
	w := do(t, s, http.MethodPost, "/annotate", body)
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"v2:salt"`) {
		t.Fatalf("post-reload response = %d %s, want a v2 decode", w.Code, w.Body.String())
	}
	if got := v1.decodes.Load(); got != 1 {
		t.Fatalf("v1 decodes = %d, want 1", got)
	}
	if got := v2.decodes.Load(); got != 1 {
		t.Fatalf("v2 decodes = %d, want 1", got)
	}
	// and the v2 answer is now the cached one.
	w = do(t, s, http.MethodPost, "/annotate", body)
	if !strings.Contains(w.Body.String(), `"v2:salt"`) || v2.decodes.Load() != 1 {
		t.Fatalf("warm post-reload response = %s (v2 decodes = %d)", w.Body.String(), v2.decodes.Load())
	}
}

// TestDegradedModeHitsServedMissesShed is the overload posture: with
// the limiter saturated by a slow decode, cache hits still answer
// (counted as degraded serves) while misses shed with 429 +
// Retry-After — and /readyz shows both counters moving.
func TestDegradedModeHitsServedMissesShed(t *testing.T) {
	gate := make(chan struct{})
	pipe := &countingPipe{tag: "v1", slow: gate}
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 128, MaxInFlight: 1})
	s.SetReady(true)

	// warm the cache while the limiter is idle.
	if w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt")); w.Code != 200 {
		t.Fatalf("warm-up = %d", w.Code)
	}

	// saturate: a slow decode occupies the only admission unit.
	slowDone := make(chan int, 1)
	go func() {
		w := do(t, s, http.MethodPost, "/annotate", annotateBody("slow:stew"))
		slowDone <- w.Code
	}()
	waitUntil(t, func() bool { return s.limiter.Saturated() })

	// hit: served despite saturation, zero admission weight.
	if w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt")); w.Code != 200 {
		t.Fatalf("degraded hit = %d, want 200", w.Code)
	}
	// all-hit batch: also free.
	batch, _ := json.Marshal(map[string][]string{"phrases": {"salt", "salt", "salt"}})
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(batch)); w.Code != 200 {
		t.Fatalf("degraded all-hit batch = %d, want 200", w.Code)
	}
	// miss: shed with the standard 429 + Retry-After.
	w := do(t, s, http.MethodPost, "/annotate", annotateBody("2 eggs"))
	if w.Code != http.StatusTooManyRequests || w.Header().Get("Retry-After") == "" {
		t.Fatalf("degraded miss = %d (Retry-After %q), want 429", w.Code, w.Header().Get("Retry-After"))
	}
	// batch with a cold phrase: its miss weight sheds too.
	coldBatch, _ := json.Marshal(map[string][]string{"phrases": {"salt", "1 tbsp butter"}})
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(coldBatch)); w.Code != http.StatusTooManyRequests {
		t.Fatalf("degraded cold batch = %d, want 429", w.Code)
	}

	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Shed.Total != 2 {
		t.Fatalf("shed.total = %d, want 2", ready.Shed.Total)
	}
	if ready.Shed.DegradedHitsServed != 4 { // 1 single + 3 batch slots
		t.Fatalf("shed.degraded_hits_served = %d, want 4", ready.Shed.DegradedHitsServed)
	}

	close(gate)
	if code := <-slowDone; code != 200 {
		t.Fatalf("slow decode = %d", code)
	}
	if s.limiter.Saturated() {
		t.Fatal("limiter still saturated after release")
	}
}

// TestCacheFaultFallsBackToDecode: an injected cache.lookup failure
// degrades to decoding — correct answers, just slower — never to an
// error response.
func TestCacheFaultFallsBackToDecode(t *testing.T) {
	defer faults.Reset()
	pipe := &countingPipe{tag: "v1"}
	s := NewWithConfig(pipe, nil, Config{CacheEntries: 128})
	s.SetReady(true)
	if w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt")); w.Code != 200 {
		t.Fatalf("warm-up = %d", w.Code)
	}
	faults.Enable(cache.FaultLookup, faults.Fault{Err: context.DeadlineExceeded})
	w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt"))
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"v1:salt"`) {
		t.Fatalf("response during cache fault = %d %s", w.Code, w.Body.String())
	}
	if got := pipe.decodes.Load(); got != 2 {
		t.Fatalf("decodes = %d, want 2 (fault forced a re-decode)", got)
	}
}
