package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"recipemodel/internal/cache"
	"recipemodel/internal/faults"
	"recipemodel/internal/flight"
)

// chaosRequest is one replayable request of the drill mix.
type chaosRequest struct {
	path string
	body string
}

// chaosMix builds the deterministic duplicated-phrase herd the drill
// replays: a few hot phrases dominating (the heavy tail), canonical-
// key byte variants, quarantine poisons, and every eighth request a
// batch that itself duplicates a hot phrase. Pure index arithmetic —
// the same mix every run on every box.
func chaosMix() []chaosRequest {
	phrases := []string{
		"salt", "2 cups onion", "salt", "1 tbsp butter",
		"salt", "2 cups onion", "2 eggs", "salt",
		"2 cups onion", // NBSP variant of the hot phrase
		"   ",          // empty_after_clean rejection
		"salt", "panic:boom", // contained tagger panic rejection
	}
	reqs := make([]chaosRequest, 0, 128)
	for i := 0; i < 120; i++ {
		if i%8 == 7 {
			batch := []string{"salt", phrases[i%len(phrases)], "salt", "2 eggs"}
			b, _ := json.Marshal(map[string][]string{"phrases": batch})
			reqs = append(reqs, chaosRequest{path: "/annotate/batch", body: string(b)})
			continue
		}
		reqs = append(reqs, chaosRequest{path: "/annotate", body: annotateBody(phrases[i%len(phrases)])})
	}
	return reqs
}

// chaosResult is the (status, body) pair compared against the oracle.
type chaosResult struct {
	code int
	body string
}

// replay serves every request in reqs on h with the given worker
// count, workers pulling the next index from a shared counter, and
// returns the per-index results.
func replay(t *testing.T, h http.Handler, reqs []chaosRequest, workers int) []chaosResult {
	t.Helper()
	got := make([]chaosResult, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				rec := do(t, h, http.MethodPost, reqs[i].path, reqs[i].body)
				got[i] = chaosResult{code: rec.Code, body: rec.Body.String()}
			}
		}()
	}
	wg.Wait()
	return got
}

// TestHerdChaos is the `make herd-test` drill: the duplicated-phrase
// herd is replayed against a cached server under worker counts 1 and
// 4 and under deterministic disruptions — a hot reload landing
// mid-herd (fired from an exact cache.lookup hit, no sleeps) and a
// flight leader killed mid-decode — and every response must be
// byte-identical to an uncached server answering the same mix
// serially. The only tolerated divergence is the killed leader's own
// 500, and exactly as many of those as the fault fired.
func TestHerdChaos(t *testing.T) {
	reqs := chaosMix()
	quiet := log.New(io.Discard, "", 0)

	// The oracle: uncached, serial — the plain meaning of the mix.
	oracleSrv := NewWithConfig(&countingPipe{tag: "v1"}, nil, Config{Logger: quiet})
	oracleSrv.SetReady(true)
	oracle := replay(t, oracleSrv, reqs, 1)

	for _, workers := range []int{1, 4} {
		for _, disruption := range []string{"none", "reload", "leaderpanic"} {
			t.Run(fmt.Sprintf("workers=%d,disruption=%s", workers, disruption), func(t *testing.T) {
				defer faults.Reset()
				cfg := Config{CacheEntries: 256, Logger: quiet}
				if disruption == "reload" {
					// The candidate decodes identically (same tag):
					// the reload drills generation invalidation, and
					// byte-identity must hold straight through it.
					cfg.Loader = func() (Pipeline, string, error) {
						return &countingPipe{tag: "v1"}, "v1-rebuilt", nil
					}
					cfg.Canary = canaryFor("v1")
				}
				s := NewWithConfig(&countingPipe{tag: "v1"}, nil, cfg)
				s.SetReady(true)

				switch disruption {
				case "reload":
					// Fire the reload from deep inside the herd: the
					// 40th cache lookup pulls the trigger, wherever in
					// the request stream that lands.
					faults.Enable(cache.FaultLookup, faults.Fault{
						Skip:  39,
						Limit: 1,
						OnHit: func(int) {
							if _, err := s.Reload(); err != nil {
								t.Errorf("mid-herd reload: %v", err)
							}
						},
					})
				case "leaderpanic":
					faults.Enable(flight.FaultLeader, faults.Fault{
						PanicMsg: "chaos: leader killed mid-decode",
						Limit:    1,
					})
				}

				got := replay(t, s, reqs, workers)

				panics := 0
				for i, g := range got {
					if disruption == "leaderpanic" && g.code == http.StatusInternalServerError {
						if g.body != `{"error":"internal server error"}`+"\n" {
							t.Fatalf("request %d: killed leader produced %q", i, g.body)
						}
						panics++
						continue
					}
					if g.code != oracle[i].code || g.body != oracle[i].body {
						t.Fatalf("request %d (%s %.40s): got (%d, %s), oracle (%d, %s)",
							i, reqs[i].path, reqs[i].body, g.code, g.body, oracle[i].code, oracle[i].body)
					}
				}
				switch disruption {
				case "leaderpanic":
					if fired := faults.Fired(flight.FaultLeader); panics != fired {
						t.Fatalf("%d panic responses, fault fired %d times", panics, fired)
					}
					if panics == 0 {
						t.Fatal("leader-kill fault never fired (mix has no miss?)")
					}
				case "reload":
					if fired := faults.Fired(cache.FaultLookup); fired != 1 {
						t.Fatalf("reload trigger fired %d times, want 1", fired)
					}
					if gen := s.Generation(); gen != 2 {
						t.Fatalf("generation after mid-herd reload = %d, want 2", gen)
					}
					if got, want := s.ModelVersion(), "v1-rebuilt"; got != want {
						t.Fatalf("model version = %q, want %q", got, want)
					}
				}
			})
		}
	}
}
