// The sharded corpus query service (DESIGN §14): serving the *mined*
// structure, not just the miner. A versioned corpus snapshot
// (internal/snapshot) is loaded into N in-memory shards, each owning
// every Nth document together with the derived read state for that
// slice — an inverted index (internal/index), the similarity ranking
// inputs, and precomputed nutrition profiles. Three endpoints fan a
// query out across the shards and fold the shard answers into one
// deterministic result:
//
//	POST /query/similar   {"id": 12, "k": 5}     → top-K similar recipes
//	POST /query/search    index.Query JSON       → matching recipes
//	POST /query/nutrition {"ids": [3, 7]}        → per-recipe profiles
//	POST /admin/reload/corpus                    → snapshot hot-swap
//
// Failure is the design driver. Every per-shard computation runs with
// panic containment and the query.shard fault point at its entry; a
// shard that panics, errors, or overruns the per-shard deadline budget
// is marked unhealthy and the query degrades to PARTIAL RESULTS — the
// response carries degraded:true and shards_served/shards_total, never
// a 5xx — mirroring the cache layer's shed-to-hot-set philosophy
// (§13): answer what can be answered, say exactly what was skipped.
// The surviving shards' results are byte-identical to a healthy
// single-shard server restricted to the surviving documents, because
// shard answers are merged under a deterministic total order (score
// descending then doc id for rankings, doc id for searches).
//
// The corpus is generation-pinned like the serving pipeline: handlers
// resolve the {snapshot, shards} state once per request from one
// atomic pointer, so a snapshot hot-swap mid-query never tears a
// result — in-flight queries finish on the snapshot they started on,
// and the next request sees the new version with fresh, healthy
// shards.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync/atomic"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/index"
	"recipemodel/internal/nutrition"
	"recipemodel/internal/similarity"
	"recipemodel/internal/snapshot"
)

// FaultQueryShard fires at the entry of every per-shard query
// execution, indexed by shard id — so a drill can kill, panic, or
// stall exactly shard k of N regardless of scheduling. An injected
// error or panic marks the shard unhealthy and degrades the query to
// partial results over the survivors.
//
//recipelint:allow faultpoint query.* is the query subsystem's namespace within server; drills address shards, not the package
const FaultQueryShard = "query.shard"

var _ = faults.MustRegister(FaultQueryShard)

// defaultSimilarK is the /query/similar result count when the request
// does not name one.
const defaultSimilarK = 10

// corpusShard owns one interleaved slice of the snapshot: documents
// whose global id ≡ id (mod stride), in ascending order, plus every
// derived read structure for that slice. Shards are immutable after
// build except for the health flag; a reload replaces them wholesale.
type corpusShard struct {
	id     int
	stride int
	models []*core.RecipeModel
	ix     *index.Index
	// profiles[i] is the precomputed nutrition estimate of models[i].
	profiles []nutrition.RecipeProfile
	// healthy flips false the first time the shard fails (panic,
	// injected fault, or deadline overrun); an unhealthy shard is
	// skipped — not retried — until a snapshot reload rebuilds it.
	healthy  atomic.Bool
	failures atomic.Int64
}

// global maps a shard-local document position to its corpus-wide id.
func (sh *corpusShard) global(local int) int { return local*sh.stride + sh.id }

// corpusState is the generation-pinned serving corpus: one snapshot
// partitioned into shards, with the corpus-wide IDF weights shared by
// all of them (per-shard IDF would make scores depend on the shard
// count, breaking the serial-oracle equivalence).
type corpusState struct {
	version string
	snap    *snapshot.Snapshot
	shards  []*corpusShard
	weights *similarity.CorpusWeights
}

// healthyShards counts shards still marked healthy.
func (cs *corpusState) healthyShards() int {
	n := 0
	for _, sh := range cs.shards {
		if sh.healthy.Load() {
			n++
		}
	}
	return n
}

// newCorpusState partitions a snapshot into nshards round-robin shards
// and builds each shard's read state. The shard count is clamped to
// [1, docs] so no shard is empty.
func newCorpusState(snap *snapshot.Snapshot, nshards int) *corpusState {
	n := nshards
	if n < 1 {
		n = 1
	}
	if len(snap.Models) > 0 && n > len(snap.Models) {
		n = len(snap.Models)
	}
	cs := &corpusState{
		version: snap.Version,
		snap:    snap,
		weights: similarity.LearnWeights(snap.Models),
	}
	est := nutrition.NewEstimator()
	for i := 0; i < n; i++ {
		var models []*core.RecipeModel
		for g := i; g < len(snap.Models); g += n {
			models = append(models, snap.Models[g])
		}
		sh := &corpusShard{
			id:       i,
			stride:   n,
			models:   models,
			ix:       index.New(models),
			profiles: est.EstimateAll(models),
		}
		sh.healthy.Store(true)
		cs.shards = append(cs.shards, sh)
	}
	return cs
}

// corpusState resolves the serving corpus once; nil when no snapshot
// is loaded. Handlers hold the same state for their whole request, so
// a hot-swap mid-query never mixes two snapshots in one answer.
func (s *Server) loadCorpus() *corpusState {
	v := s.corpus.Load()
	if v == nil {
		return nil
	}
	return v.(*corpusState)
}

// CorpusVersion reports the serving snapshot version ("" when no
// corpus is loaded).
func (s *Server) CorpusVersion() string {
	if cs := s.loadCorpus(); cs != nil {
		return cs.version
	}
	return ""
}

// CorpusReloadEnabled reports whether a corpus loader is configured —
// cmd/recipeserver's SIGHUP handler uses it to skip the corpus reload
// (and its log line) on servers without a snapshot store.
func (s *Server) CorpusReloadEnabled() bool { return s.cfg.CorpusLoader != nil }

// ReloadCorpus loads a snapshot through Config.CorpusLoader and
// atomically swaps it into the serving position with fresh, healthy
// shards. On any failure — including a torn or corrupt snapshot the
// loader rejects — the previous corpus keeps serving and the error
// describes the rejection. Reloads are serialized.
func (s *Server) ReloadCorpus() (version string, err error) {
	if s.cfg.CorpusLoader == nil {
		return "", errors.New("no corpus loader configured")
	}
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	//recipelint:allow locksafe corpusMu exists only to serialize reloads — holding it across the load is the point, and no query path ever blocks on it (reads go through s.corpus.Load)
	snap, err := s.cfg.CorpusLoader()
	if err != nil {
		s.corpusRejected.Add(1)
		return "", fmt.Errorf("load snapshot: %w", err)
	}
	if snap == nil || len(snap.Models) == 0 {
		s.corpusRejected.Add(1)
		return "", errors.New("loader returned an empty snapshot")
	}
	s.corpus.Store(newCorpusState(snap, s.cfg.CorpusShards))
	s.corpusReloads.Add(1)
	return snap.Version, nil
}

func (s *Server) handleReloadCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cfg.CorpusLoader == nil {
		httpError(w, http.StatusServiceUnavailable, "corpus reload not configured (no snapshot store)")
		return
	}
	version, err := s.ReloadCorpus()
	if err != nil {
		writeJSONStatus(w, http.StatusUnprocessableEntity, map[string]string{
			"error":   "corpus reload rejected: " + err.Error(),
			"serving": s.CorpusVersion(),
		})
		return
	}
	cs := s.loadCorpus()
	writeJSON(w, map[string]any{
		"status":  "ok",
		"version": version,
		"docs":    len(cs.snap.Models),
		"shards":  len(cs.shards),
	})
}

// queryEnvelope wraps every query response with the degradation
// contract: which snapshot answered, how many shards contributed, and
// whether anything was skipped. degraded:true with shards_served <
// shards_total is the partial-result signal — the HTTP status stays
// 200, because a partial answer over the surviving shards is an
// answer, not a failure.
type queryEnvelope struct {
	Snapshot     string `json:"snapshot"`
	ShardsTotal  int    `json:"shards_total"`
	ShardsServed int    `json:"shards_served"`
	Degraded     bool   `json:"degraded"`
	FailedShards []int  `json:"failed_shards,omitempty"`
	Results      any    `json:"results"`
}

// shardOutcome is one shard's fan-out answer.
type shardOutcome struct {
	id  int
	out any
	err error
}

// runShard executes fn on one shard with panic containment and the
// query.shard fault point planted at entry. A panic in shard code —
// plausibly a corrupt snapshot slice — is an error for this shard
// alone, never process death and never a lost query.
func runShard(sh *corpusShard, fn func(*corpusShard) any) (out any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("shard %d panicked: %v", sh.id, rec)
		}
	}()
	if err := faults.InjectIndexed(FaultQueryShard, sh.id); err != nil {
		return nil, fmt.Errorf("shard %d: %w", sh.id, err)
	}
	return fn(sh), nil
}

// queryShards fans fn out over the target shards and collects the
// answers, bounded by the request context and, when configured, the
// per-shard deadline budget. Shards already marked unhealthy are
// skipped without spawning work. A shard that fails or overruns is
// marked unhealthy and listed in failed; the caller degrades to the
// survivors. served maps shard id → fn's answer.
func (s *Server) queryShards(ctx context.Context, targets []*corpusShard, fn func(*corpusShard) any) (served map[int]any, failed []int) {
	served = make(map[int]any, len(targets))
	qctx := ctx
	if s.cfg.QueryShardBudget > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(ctx, s.cfg.QueryShardBudget)
		defer cancel()
	}
	ch := make(chan shardOutcome, len(targets))
	pending := make(map[int]*corpusShard, len(targets))
	for _, sh := range targets {
		if !sh.healthy.Load() {
			failed = append(failed, sh.id)
			continue
		}
		pending[sh.id] = sh
		go func(sh *corpusShard) {
			out, err := runShard(sh, fn)
			// The channel is buffered to the full fan-out, so a shard
			// finishing after the collector gave up parks its answer
			// here and the goroutine exits — no leak, no lost recover.
			ch <- shardOutcome{id: sh.id, out: out, err: err}
		}(sh)
	}
	for len(pending) > 0 {
		select {
		case res := <-ch:
			sh, ok := pending[res.id]
			if !ok {
				continue
			}
			delete(pending, res.id)
			if res.err != nil {
				s.failShard(sh, res.err)
				failed = append(failed, res.id)
				continue
			}
			served[res.id] = res.out
		case <-qctx.Done():
			// Budget exhausted (or the client went away). Every shard
			// still pending is unserved; a budget overrun with a live
			// client marks the slow shards unhealthy so the next query
			// does not wait on them again — a reload rebuilds them.
			slow := ctx.Err() == nil
			for id, sh := range pending {
				if slow {
					s.failShard(sh, fmt.Errorf("shard %d: deadline budget %v exceeded", id, s.cfg.QueryShardBudget))
				}
				failed = append(failed, id)
			}
			pending = nil
		}
	}
	sort.Ints(failed)
	return served, failed
}

// failShard marks a shard unhealthy (first failure wins) and logs the
// cause.
func (s *Server) failShard(sh *corpusShard, err error) {
	sh.failures.Add(1)
	// Shard panics and budget overruns feed the CRF-tier breaker
	// (DESIGN §15): corpus shards share the process with the decode
	// path, and a shard dying is evidence of the same poisoned load.
	s.brk.Report(false)
	if sh.healthy.CompareAndSwap(true, false) {
		logger := s.cfg.Logger
		if logger == nil {
			logger = log.Default()
		}
		logger.Printf("corpus shard %d marked unhealthy: %v", sh.id, err)
	}
}

// writeQuery emits the envelope, counting a degraded (partial) serve.
func (s *Server) writeQuery(w http.ResponseWriter, cs *corpusState, failed []int, results any) {
	degraded := len(failed) > 0
	if degraded {
		s.degradedQueries.Add(1)
	}
	writeJSON(w, queryEnvelope{
		Snapshot:     cs.version,
		ShardsTotal:  len(cs.shards),
		ShardsServed: len(cs.shards) - len(failed),
		Degraded:     degraded,
		FailedShards: failed,
		Results:      results,
	})
}

// corpusForQuery resolves the serving corpus or answers 503 — the only
// non-degradable query failure: there is no corpus at all.
func (s *Server) corpusForQuery(w http.ResponseWriter) *corpusState {
	cs := s.loadCorpus()
	if cs == nil {
		httpError(w, http.StatusServiceUnavailable, "no corpus snapshot loaded")
	}
	return cs
}

// similarRequest is the /query/similar payload: the corpus doc id to
// rank against and how many neighbors to return.
type similarRequest struct {
	ID *int `json:"id"`
	K  int  `json:"k"`
}

// similarHit is one /query/similar result row.
type similarHit struct {
	ID    int     `json:"id"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

func (s *Server) handleQuerySimilar(w http.ResponseWriter, r *http.Request) {
	var req similarRequest
	if !decode(w, r, &req) {
		return
	}
	cs := s.corpusForQuery(w)
	if cs == nil {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "id is required")
		return
	}
	id := *req.ID
	if id < 0 || id >= len(cs.snap.Models) {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("id %d out of range (corpus holds %d docs)", id, len(cs.snap.Models)))
		return
	}
	k := req.K
	if k <= 0 {
		k = defaultSimilarK
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	// The query model is resolved from the snapshot itself, not from a
	// shard, so ranking proceeds even when the query doc's own shard is
	// down — its slice just cannot appear among the neighbors.
	query := cs.snap.Models[id]
	served, failed := s.queryShards(r.Context(), cs.shards, func(sh *corpusShard) any {
		scored := make([]similarity.Ranked, 0, len(sh.models))
		for local, m := range sh.models {
			g := sh.global(local)
			if g == id {
				continue // a recipe is trivially similar to itself
			}
			scored = append(scored, similarity.Ranked{
				Index: g,
				Score: similarity.WeightedScore(query, m, cs.weights, similarity.DefaultWeights),
			})
		}
		return similarity.TopK(scored, k)
	})
	lists := make([][]similarity.Ranked, 0, len(served))
	for _, sh := range cs.shards {
		if out, ok := served[sh.id]; ok {
			lists = append(lists, out.([]similarity.Ranked))
		}
	}
	merged := similarity.MergeTopK(lists, k)
	hits := make([]similarHit, 0, len(merged))
	for _, rk := range merged {
		hits = append(hits, similarHit{ID: rk.Index, Title: cs.snap.Models[rk.Index].Title, Score: rk.Score})
	}
	s.writeQuery(w, cs, failed, hits)
}

func (s *Server) handleQuerySearch(w http.ResponseWriter, r *http.Request) {
	var q index.Query
	if !decode(w, r, &q) {
		return
	}
	cs := s.corpusForQuery(w)
	if cs == nil {
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	served, failed := s.queryShards(r.Context(), cs.shards, func(sh *corpusShard) any {
		ids := sh.ix.Search(q)
		hits := make([]searchHit, 0, len(ids))
		for _, local := range ids {
			m := sh.models[local]
			hits = append(hits, searchHit{ID: sh.global(local), Title: m.Title, Cuisine: m.Cuisine})
		}
		return hits
	})
	var all []searchHit
	for _, sh := range cs.shards {
		if out, ok := served[sh.id]; ok {
			all = append(all, out.([]searchHit)...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if all == nil {
		all = []searchHit{}
	}
	s.writeQuery(w, cs, failed, all)
}

// nutritionRequest is the /query/nutrition payload: one id or several.
type nutritionRequest struct {
	ID  *int  `json:"id"`
	IDs []int `json:"ids"`
}

// nutritionItem is one /query/nutrition result row. Rows for ids owned
// by a failed shard are absent from a degraded response — partial
// results, not invented zeros.
type nutritionItem struct {
	ID        int                     `json:"id"`
	Title     string                  `json:"title"`
	Nutrition nutrition.RecipeProfile `json:"nutrition"`
}

func (s *Server) handleQueryNutrition(w http.ResponseWriter, r *http.Request) {
	var req nutritionRequest
	if !decode(w, r, &req) {
		return
	}
	cs := s.corpusForQuery(w)
	if cs == nil {
		return
	}
	ids := append([]int(nil), req.IDs...)
	if req.ID != nil {
		ids = append(ids, *req.ID)
	}
	if len(ids) == 0 {
		httpError(w, http.StatusBadRequest, "id or ids required")
		return
	}
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if id < 0 || id >= len(cs.snap.Models) {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("id %d out of range (corpus holds %d docs)", id, len(cs.snap.Models)))
			return
		}
		if i > 0 && id == ids[i-1] {
			continue
		}
		uniq = append(uniq, id)
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	// Only the shards owning a requested id do any work.
	byShard := make(map[int][]int)
	for _, id := range uniq {
		owner := id % len(cs.shards)
		byShard[owner] = append(byShard[owner], id)
	}
	targets := make([]*corpusShard, 0, len(byShard))
	for _, sh := range cs.shards {
		if _, ok := byShard[sh.id]; ok {
			targets = append(targets, sh)
		}
	}
	served, failed := s.queryShards(r.Context(), targets, func(sh *corpusShard) any {
		items := make([]nutritionItem, 0, len(byShard[sh.id]))
		for _, id := range byShard[sh.id] {
			local := id / sh.stride
			items = append(items, nutritionItem{
				ID:        id,
				Title:     sh.models[local].Title,
				Nutrition: sh.profiles[local],
			})
		}
		return items
	})
	items := make([]nutritionItem, 0, len(uniq))
	for _, sh := range cs.shards {
		if out, ok := served[sh.id]; ok {
			items = append(items, out.([]nutritionItem)...)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	s.writeQuery(w, cs, failed, items)
}
