// Chaos drills for the sharded query service (run by `make
// query-chaos-test` under -race). Each drill injects a failure through
// internal/faults — a killed shard, a reload racing an in-flight
// query, a torn snapshot on disk — and checks the degraded answers
// against a serial single-shard oracle: the surviving shards' results
// must match, element for element, what a healthy one-shard server
// would answer over only the surviving documents. No drill sleeps;
// stalls are channel gates and ordering is enforced by the gates, not
// the scheduler.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"recipemodel/internal/faults"
	"recipemodel/internal/resilience"
	"recipemodel/internal/snapshot"
)

// chaosQuery runs one query and decodes its envelope.
func chaosQuery(t *testing.T, s *Server, path, body string) (envelope, int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return envelope{}, w.Code
	}
	return decodeEnvelope(t, w.Body), w.Code
}

// TestQueryChaosShardKill is the headline acceptance drill: shard k of
// N is killed mid-query; every query still completes with 200 and
// degraded:true, and the served results are identical to the serial
// oracle restricted to the surviving documents.
func TestQueryChaosShardKill(t *testing.T) {
	const docs, shards, killed = 24, 4, 2
	s := queryServer(shards, docs)
	oracle := queryServer(1, docs)
	defer faults.Enable(FaultQueryShard, faults.Fault{
		Err:     errors.New("injected shard kill"),
		Indices: []int{killed},
	})()
	survives := func(id int) bool { return id%shards != killed }

	// /query/similar for a spread of query docs — including docs owned
	// by the killed shard, which must still be rankable (the query
	// model comes from the snapshot, not from its shard).
	for id := 0; id < docs; id += 5 {
		body := `{"id": ` + strconv.Itoa(id) + `, "k": 6}`
		env, code := chaosQuery(t, s, "/query/similar", body)
		if code != http.StatusOK {
			t.Fatalf("similar id=%d: status %d", id, code)
		}
		if !env.Degraded || env.ShardsServed != shards-1 || len(env.FailedShards) != 1 || env.FailedShards[0] != killed {
			t.Fatalf("similar id=%d envelope %+v", id, env)
		}
		var got []similarHit
		if err := json.Unmarshal(env.Results, &got); err != nil {
			t.Fatal(err)
		}
		// Oracle: the full serial ranking, filtered to survivors, then
		// truncated to k. Filter-then-truncate equals the degraded
		// ranking exactly because both use one deterministic total order.
		fullEnv, _ := chaosQuery(t, oracle, "/query/similar", `{"id": `+strconv.Itoa(id)+`, "k": `+strconv.Itoa(docs)+`}`)
		var full []similarHit
		if err := json.Unmarshal(fullEnv.Results, &full); err != nil {
			t.Fatal(err)
		}
		want := make([]similarHit, 0, 6)
		for _, h := range full {
			if survives(h.ID) && len(want) < 6 {
				want = append(want, h)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("similar id=%d degraded results diverge from oracle:\n  got  %+v\n  want %+v", id, got, want)
		}
	}

	// /query/search: degraded hits = oracle hits minus the killed
	// shard's documents.
	for _, body := range []string{`{"processes": ["fry"]}`, `{"ingredients": ["onion"]}`, `{"cuisine": "thai"}`} {
		env, code := chaosQuery(t, s, "/query/search", body)
		if code != http.StatusOK || !env.Degraded {
			t.Fatalf("search %s: status %d envelope %+v", body, code, env)
		}
		var got, full []searchHit
		if err := json.Unmarshal(env.Results, &got); err != nil {
			t.Fatal(err)
		}
		oEnv, _ := chaosQuery(t, oracle, "/query/search", body)
		if err := json.Unmarshal(oEnv.Results, &full); err != nil {
			t.Fatal(err)
		}
		want := make([]searchHit, 0, len(full))
		for _, h := range full {
			if survives(h.ID) {
				want = append(want, h)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("search %s diverges from oracle:\n  got  %+v\n  want %+v", body, got, want)
		}
	}

	// /query/nutrition: rows for the killed shard's ids are absent,
	// surviving rows identical to the oracle's.
	env, code := chaosQuery(t, s, "/query/nutrition", `{"ids": [0,1,2,3,10,14,22]}`)
	if code != http.StatusOK || !env.Degraded {
		t.Fatalf("nutrition: status %d envelope %+v", code, env)
	}
	var got, full []nutritionItem
	if err := json.Unmarshal(env.Results, &got); err != nil {
		t.Fatal(err)
	}
	oEnv, _ := chaosQuery(t, oracle, "/query/nutrition", `{"ids": [0,1,2,3,10,14,22]}`)
	if err := json.Unmarshal(oEnv.Results, &full); err != nil {
		t.Fatal(err)
	}
	want := make([]nutritionItem, 0, len(full))
	for _, it := range full {
		if survives(it.ID) {
			want = append(want, it)
		}
	}
	if len(want) == len(full) {
		t.Fatal("drill is vacuous: no requested id was owned by the killed shard")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nutrition diverges from oracle:\n  got  %+v\n  want %+v", got, want)
	}
}

// TestQueryChaosReloadMidQuery: a snapshot hot-swap lands while a
// query is suspended inside a shard. The in-flight query must finish
// on the snapshot it started on; the next query serves the new one.
func TestQueryChaosReloadMidQuery(t *testing.T) {
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: querySnapshot("v000001", 8),
		CorpusShards:   2,
		CorpusLoader:   func() (*snapshot.Snapshot, error) { return querySnapshot("v000002", 10), nil },
	})
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	defer faults.Enable(FaultQueryShard, faults.Fault{
		Indices: []int{0},
		OnHit:   func(int) { entered <- struct{}{}; <-gate },
	})()

	type answer struct {
		env  envelope
		code int
	}
	done := make(chan answer, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/query/similar", strings.NewReader(`{"id": 1, "k": 4}`))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		var env envelope
		if w.Code == http.StatusOK {
			_ = json.Unmarshal(w.Body.Bytes(), &env)
		}
		done <- answer{env, w.Code}
	}()

	<-entered // the query is inside shard 0, pinned to v000001
	if v, err := s.ReloadCorpus(); err != nil || v != "v000002" {
		t.Fatalf("reload under in-flight query: %q, %v", v, err)
	}
	close(gate)
	ans := <-done
	if ans.code != http.StatusOK {
		t.Fatalf("in-flight query: status %d", ans.code)
	}
	if ans.env.Snapshot != "v000001" || ans.env.Degraded {
		t.Fatalf("in-flight query not pinned to its snapshot: %+v", ans.env)
	}
	env, _ := chaosQuery(t, s, "/query/similar", `{"id": 1, "k": 4}`)
	if env.Snapshot != "v000002" || env.ShardsTotal != 2 || env.Degraded {
		t.Fatalf("post-reload query: %+v", env)
	}
}

// TestQueryChaosTornSnapshot: the server boots from a real on-disk
// store; a torn publish is rejected at reload with a named-file,
// expected-vs-found digest error while the previous version keeps
// serving — and LoadLatestGood recovers it for a fresh boot.
func TestQueryChaosTornSnapshot(t *testing.T) {
	st, err := snapshot.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Backoff = resilience.Backoff{Sleep: func(time.Duration) {}}
	if _, err := st.Build(queryCorpusModels(10)); err != nil {
		t.Fatal(err)
	}
	boot, err := st.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: boot,
		CorpusShards:   3,
		CorpusLoader:   func() (*snapshot.Snapshot, error) { return st.Load(context.Background()) },
	})

	// A new version is published, then torn on disk (crash mid-copy,
	// bit rot — the manifest no longer matches the bytes).
	v2, err := st.Build(queryCorpusModels(14))
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(st.Dir(), "snapshots", v2, "seg-000000.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/admin/reload/corpus", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("torn snapshot reload: status %d: %s", w.Code, w.Body.String())
	}
	if msg := w.Body.String(); !strings.Contains(msg, "seg-000000.jsonl") || !strings.Contains(msg, "manifest expects") {
		t.Fatalf("rejection does not name the torn file: %s", msg)
	}
	env, code := chaosQuery(t, s, "/query/similar", `{"id": 0, "k": 3}`)
	if code != http.StatusOK || env.Snapshot != "v000001" || env.Degraded {
		t.Fatalf("previous version not serving after torn publish: status %d, %+v", code, env)
	}

	// A fresh boot through LoadLatestGood rolls back to v000001 and
	// reports why v000002 was rejected.
	snap, rejected, err := st.LoadLatestGood(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != "v000001" || len(rejected) != 1 || !strings.Contains(rejected[0].Error(), v2) {
		t.Fatalf("LoadLatestGood: %q, rejected %v", snap.Version, rejected)
	}
}
