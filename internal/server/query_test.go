package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/relations"
	"recipemodel/internal/snapshot"
)

// queryCorpusModels builds n recipe models with enough structural
// variety that similarity rankings are non-trivial and searches can
// select strict subsets.
func queryCorpusModels(n int) []*core.RecipeModel {
	names := []string{"onion", "garlic", "tomato", "chicken", "butter", "rice"}
	procs := []string{"chop", "fry", "boil", "bake"}
	cuisines := []string{"french", "indian", "thai"}
	out := make([]*core.RecipeModel, n)
	for i := range out {
		a, b := names[i%len(names)], names[(i+2)%len(names)]
		out[i] = &core.RecipeModel{
			Title:   fmt.Sprintf("recipe-%03d-%s", i, a),
			Cuisine: cuisines[i%len(cuisines)],
			Ingredients: []core.IngredientRecord{
				{Phrase: "2 cups " + a, Name: a, Quantity: "2", Unit: "cups"},
				{Phrase: "1 tsp " + b, Name: b, Quantity: "1", Unit: "tsp", State: "chopped"},
			},
			Instructions: []string{"Step one.", "Step two."},
			Events: []core.Event{
				{Step: 0, Relation: relations.Relation{Process: procs[i%len(procs)]}},
				{Step: 1, Relation: relations.Relation{Process: procs[(i+1)%len(procs)]}},
			},
		}
	}
	return out
}

func querySnapshot(version string, n int) *snapshot.Snapshot {
	return &snapshot.Snapshot{Version: version, Models: queryCorpusModels(n)}
}

// queryServer builds a server whose only interesting state is the
// sharded corpus.
func queryServer(shards, docs int) *Server {
	return NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: querySnapshot("v000001", docs),
		CorpusShards:   shards,
	})
}

// envelope mirrors queryEnvelope with raw results, for assertions on
// exact result bytes.
type envelope struct {
	Snapshot     string          `json:"snapshot"`
	ShardsTotal  int             `json:"shards_total"`
	ShardsServed int             `json:"shards_served"`
	Degraded     bool            `json:"degraded"`
	FailedShards []int           `json:"failed_shards"`
	Results      json.RawMessage `json:"results"`
}

func decodeEnvelope(t *testing.T, body *bytes.Buffer) envelope {
	t.Helper()
	var env envelope
	if err := json.Unmarshal(body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope %q: %v", body.String(), err)
	}
	return env
}

func TestQuerySimilar(t *testing.T) {
	s := queryServer(4, 12)
	w := do(t, s, http.MethodPost, "/query/similar", `{"id": 0, "k": 3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w.Body)
	if env.Snapshot != "v000001" || env.ShardsTotal != 4 || env.ShardsServed != 4 || env.Degraded {
		t.Fatalf("envelope %+v", env)
	}
	var hits []similarHit
	if err := json.Unmarshal(env.Results, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(hits))
	}
	for i, h := range hits {
		if h.ID == 0 {
			t.Fatal("query doc ranked as its own neighbor")
		}
		if i > 0 && hits[i].Score > hits[i-1].Score {
			t.Fatalf("scores not descending: %+v", hits)
		}
		if h.Title == "" {
			t.Fatalf("hit %d has no title", i)
		}
	}
}

func TestQuerySimilarDefaultK(t *testing.T) {
	s := queryServer(3, 15)
	w := do(t, s, http.MethodPost, "/query/similar", `{"id": 7}`)
	env := decodeEnvelope(t, w.Body)
	var hits []similarHit
	if err := json.Unmarshal(env.Results, &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != defaultSimilarK {
		t.Fatalf("default k served %d hits, want %d", len(hits), defaultSimilarK)
	}
}

func TestQuerySimilarValidation(t *testing.T) {
	s := queryServer(2, 6)
	for body, want := range map[string]int{
		`{}`:           http.StatusBadRequest,
		`{"id": -1}`:   http.StatusBadRequest,
		`{"id": 6}`:    http.StatusBadRequest,
		`{"id": junk}`: http.StatusBadRequest,
	} {
		if w := do(t, s, http.MethodPost, "/query/similar", body); w.Code != want {
			t.Errorf("%s: status %d, want %d", body, w.Code, want)
		}
	}
	if w := do(t, s, http.MethodGet, "/query/similar", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", w.Code)
	}
}

func TestQueryWithoutCorpus503(t *testing.T) {
	s := New(fakePipe{}, nil)
	for _, path := range []string{"/query/similar", "/query/search", "/query/nutrition"} {
		if w := do(t, s, http.MethodPost, path, `{}`); w.Code != http.StatusServiceUnavailable {
			t.Errorf("%s without corpus: status %d, want 503", path, w.Code)
		}
	}
}

func TestQuerySearch(t *testing.T) {
	s := queryServer(4, 12)
	w := do(t, s, http.MethodPost, "/query/search", `{"ingredients": ["onion"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w.Body)
	var hits []searchHit
	if err := json.Unmarshal(env.Results, &hits); err != nil {
		t.Fatal(err)
	}
	// "onion" is ingredient a of docs i≡0 (mod 6) and ingredient b of
	// docs i≡4 (mod 6): docs 0, 4, 6, 10 of the 12-doc corpus.
	want := []int{0, 4, 6, 10}
	if len(hits) != len(want) {
		t.Fatalf("hits %+v, want ids %v", hits, want)
	}
	for i, h := range hits {
		if h.ID != want[i] {
			t.Fatalf("hits %+v, want ids %v", hits, want)
		}
	}
}

func TestQuerySearchNoMatchIsEmptyList(t *testing.T) {
	s := queryServer(3, 9)
	w := do(t, s, http.MethodPost, "/query/search", `{"ingredients": ["durian"]}`)
	env := decodeEnvelope(t, w.Body)
	if string(env.Results) != "[]" {
		t.Fatalf("no-match results = %s, want []", env.Results)
	}
}

func TestQueryNutrition(t *testing.T) {
	s := queryServer(4, 12)
	w := do(t, s, http.MethodPost, "/query/nutrition", `{"ids": [5, 1, 1, 3]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w.Body)
	// Only the shards owning ids 1, 3, 5 are targeted (4-shard corpus:
	// shards 1 and 3), and untargeted shards do not count as failed.
	if env.Degraded || env.ShardsServed != 4 {
		t.Fatalf("envelope %+v", env)
	}
	var items []nutritionItem
	if err := json.Unmarshal(env.Results, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items for deduplicated ids [1 3 5]", len(items))
	}
	for i, id := range []int{1, 3, 5} {
		if items[i].ID != id {
			t.Fatalf("item %d is id %d, want %d", i, items[i].ID, id)
		}
		if items[i].Nutrition.Ingredients != 2 {
			t.Fatalf("item %d profile covers %d ingredients, want 2", i, items[i].Nutrition.Ingredients)
		}
	}
}

func TestQueryNutritionValidation(t *testing.T) {
	s := queryServer(2, 4)
	for body, want := range map[string]int{
		`{}`:               http.StatusBadRequest,
		`{"ids": []}`:      http.StatusBadRequest,
		`{"ids": [0, 99]}`: http.StatusBadRequest,
		`{"id": -3}`:       http.StatusBadRequest,
		`{"id": 1}`:        http.StatusOK,
		`{"ids": [0,1,2]}`: http.StatusOK,
	} {
		if w := do(t, s, http.MethodPost, "/query/nutrition", body); w.Code != want {
			t.Errorf("%s: status %d, want %d", body, w.Code, want)
		}
	}
}

// TestQueryShardCountInvariance pins the oracle property the sharding
// relies on: the result bytes of every query endpoint are identical
// whatever the shard count, because doc ids are global, IDF weights
// are corpus-wide, and merges use a deterministic total order.
func TestQueryShardCountInvariance(t *testing.T) {
	const docs = 13
	queries := map[string]string{
		"/query/similar":   `{"id": 3, "k": 5}`,
		"/query/search":    `{"processes": ["fry"]}`,
		"/query/nutrition": `{"ids": [0, 5, 12]}`,
	}
	baseline := map[string]string{}
	serial := queryServer(1, docs)
	for path, body := range queries {
		env := decodeEnvelope(t, do(t, serial, http.MethodPost, path, body).Body)
		baseline[path] = string(env.Results)
	}
	for _, shards := range []int{2, 3, 4, docs, docs + 50} {
		s := queryServer(shards, docs)
		for path, body := range queries {
			env := decodeEnvelope(t, do(t, s, http.MethodPost, path, body).Body)
			if got := string(env.Results); got != baseline[path] {
				t.Errorf("%d shards, %s:\n  got  %s\n  want %s", shards, path, got, baseline[path])
			}
			if env.ShardsTotal > docs {
				t.Errorf("%d shards over %d docs left an empty shard: total %d", shards, docs, env.ShardsTotal)
			}
		}
	}
}

// TestReadyzCorpusBlock is the satellite-3 contract: /readyz reports
// the serving snapshot and shard health.
func TestReadyzCorpusBlock(t *testing.T) {
	s := queryServer(4, 12)
	s.SetReady(true)
	w := do(t, s, http.MethodGet, "/readyz", "")
	var resp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	c := resp.Corpus
	if !c.Enabled || c.Version != "v000001" || c.Docs != 12 || c.ShardsTotal != 4 || c.ShardsHealthy != 4 {
		t.Fatalf("corpus block %+v", c)
	}
	if c.DegradedQueriesServed != 0 {
		t.Fatalf("degraded counter %d before any query", c.DegradedQueriesServed)
	}

	bare := New(fakePipe{}, nil)
	bare.SetReady(true)
	w = do(t, bare, http.MethodGet, "/readyz", "")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Corpus.Enabled || resp.Corpus.ShardsTotal != 0 {
		t.Fatalf("corpus block without corpus: %+v", resp.Corpus)
	}
}

func TestReloadCorpus(t *testing.T) {
	next := querySnapshot("v000002", 8)
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: querySnapshot("v000001", 6),
		CorpusShards:   3,
		CorpusLoader:   func() (*snapshot.Snapshot, error) { return next, nil },
	})
	w := do(t, s, http.MethodPost, "/admin/reload/corpus", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", w.Code, w.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["version"] != "v000002" || resp["docs"] != float64(8) {
		t.Fatalf("reload response %+v", resp)
	}
	env := decodeEnvelope(t, do(t, s, http.MethodPost, "/query/similar", `{"id": 0}`).Body)
	if env.Snapshot != "v000002" {
		t.Fatalf("post-reload query served snapshot %q", env.Snapshot)
	}
	s.SetReady(true)
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Corpus.Reloads != 1 || ready.Corpus.Version != "v000002" {
		t.Fatalf("readyz after reload: %+v", ready.Corpus)
	}
}

// TestReloadCorpusRejected: a loader failure (torn snapshot, empty
// corpus) answers 422 and the previous snapshot keeps serving.
func TestReloadCorpusRejected(t *testing.T) {
	loadErr := errors.New("snapshot: seg-000000.jsonl: checksum mismatch")
	fail := true
	var empty *snapshot.Snapshot
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: querySnapshot("v000001", 6),
		CorpusShards:   2,
		CorpusLoader: func() (*snapshot.Snapshot, error) {
			if fail {
				return nil, loadErr
			}
			return empty, nil
		},
	})
	w := do(t, s, http.MethodPost, "/admin/reload/corpus", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("torn snapshot reload: status %d", w.Code)
	}
	var resp map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["serving"] != "v000001" {
		t.Fatalf("rejection payload %+v", resp)
	}
	fail = false // now the loader returns a nil snapshot
	if w := do(t, s, http.MethodPost, "/admin/reload/corpus", ""); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty snapshot reload: status %d", w.Code)
	}
	env := decodeEnvelope(t, do(t, s, http.MethodPost, "/query/similar", `{"id": 0}`).Body)
	if env.Snapshot != "v000001" || env.Degraded {
		t.Fatalf("previous snapshot not serving after rejections: %+v", env)
	}
	s.SetReady(true)
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Corpus.RejectedReloads != 2 || ready.Corpus.Reloads != 0 {
		t.Fatalf("readyz after rejections: %+v", ready.Corpus)
	}
}

func TestReloadCorpusNotConfigured(t *testing.T) {
	s := queryServer(2, 4)
	if w := do(t, s, http.MethodPost, "/admin/reload/corpus", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
}

// TestQueryShardPanicContained: a panicking shard degrades the query
// to partial results over the survivors — 200, never a 500 — and stays
// out of subsequent queries until a reload rebuilds it.
func TestQueryShardPanicContained(t *testing.T) {
	s := queryServer(4, 12)
	disable := faults.Enable(FaultQueryShard, faults.Fault{PanicMsg: "shard corrupted", Indices: []int{2}})
	w := do(t, s, http.MethodPost, "/query/search", `{"processes": ["fry"]}`)
	disable()
	if w.Code != http.StatusOK {
		t.Fatalf("degraded query: status %d, want 200", w.Code)
	}
	env := decodeEnvelope(t, w.Body)
	if !env.Degraded || env.ShardsServed != 3 || len(env.FailedShards) != 1 || env.FailedShards[0] != 2 {
		t.Fatalf("envelope %+v", env)
	}
	// The fault is disarmed, but the shard stays unhealthy and skipped.
	env = decodeEnvelope(t, do(t, s, http.MethodPost, "/query/search", `{"processes": ["fry"]}`).Body)
	if !env.Degraded || env.ShardsServed != 3 {
		t.Fatalf("unhealthy shard served again: %+v", env)
	}
	s.SetReady(true)
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Corpus.ShardsHealthy != 3 || ready.Corpus.DegradedQueriesServed != 2 {
		t.Fatalf("readyz after shard death: %+v", ready.Corpus)
	}
}

// TestQueryShardBudget: a shard that stalls past the per-shard budget
// is skipped (partial results) and marked unhealthy. The stall is a
// channel gate, not a sleep; only the budget timer itself elapses.
func TestQueryShardBudget(t *testing.T) {
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot:   querySnapshot("v000001", 8),
		CorpusShards:     2,
		QueryShardBudget: 10 * time.Millisecond,
	})
	gate := make(chan struct{})
	disable := faults.Enable(FaultQueryShard, faults.Fault{
		Indices: []int{1},
		OnHit:   func(int) { <-gate },
	})
	defer disable()
	w := do(t, s, http.MethodPost, "/query/similar", `{"id": 0, "k": 3}`)
	close(gate)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	env := decodeEnvelope(t, w.Body)
	if !env.Degraded || env.ShardsServed != 1 || len(env.FailedShards) != 1 || env.FailedShards[0] != 1 {
		t.Fatalf("envelope %+v", env)
	}
	s.SetReady(true)
	var ready readyResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/readyz", "").Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Corpus.ShardsHealthy != 1 {
		t.Fatalf("slow shard not marked unhealthy: %+v", ready.Corpus)
	}
}

// TestReloadCorpusRestoresShardHealth: a snapshot reload rebuilds the
// shards, clearing unhealthy marks.
func TestReloadCorpusRestoresShardHealth(t *testing.T) {
	s := NewWithConfig(fakePipe{}, nil, Config{
		CorpusSnapshot: querySnapshot("v000001", 8),
		CorpusShards:   4,
		CorpusLoader:   func() (*snapshot.Snapshot, error) { return querySnapshot("v000002", 8), nil },
	})
	disable := faults.Enable(FaultQueryShard, faults.Fault{Err: errors.New("injected"), Indices: []int{0}})
	env := decodeEnvelope(t, do(t, s, http.MethodPost, "/query/search", `{"cuisine": "thai"}`).Body)
	disable()
	if !env.Degraded {
		t.Fatalf("fault did not degrade: %+v", env)
	}
	if w := do(t, s, http.MethodPost, "/admin/reload/corpus", ""); w.Code != http.StatusOK {
		t.Fatalf("reload status %d", w.Code)
	}
	env = decodeEnvelope(t, do(t, s, http.MethodPost, "/query/search", `{"cuisine": "thai"}`).Body)
	if env.Degraded || env.ShardsServed != 4 || env.Snapshot != "v000002" {
		t.Fatalf("post-reload envelope %+v", env)
	}
}
