package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/persist"
)

// versionedPipe is a fakePipe whose annotations carry a State marker,
// so tests can tell which model generation served a response.
type versionedPipe struct {
	fakePipe
	marker string
}

func (v versionedPipe) AnnotateIngredient(phrase string) core.IngredientRecord {
	r := v.fakePipe.AnnotateIngredient(phrase)
	r.State = v.marker
	return r
}

func (v versionedPipe) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	r, err := v.fakePipe.AnnotateIngredientChecked(phrase)
	r.State = v.marker
	return r, err
}

// onionCanary matches the fake pipes, which extract "onion" from
// everything.
var onionCanary = []core.CanaryCase{{Phrase: "2 cups chopped onion", WantName: "onion"}}

func annotateState(t *testing.T, s *Server) string {
	t.Helper()
	w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"x"}`)
	if w.Code != 200 {
		t.Fatalf("annotate = %d: %s", w.Code, w.Body.String())
	}
	var rec core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	return rec.State
}

func TestReloadNotConfigured(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/admin/reload", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("reload without loader = %d, want 503", w.Code)
	}
}

func TestReloadMethodNotAllowed(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodGet, "/admin/reload", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d, want 405", w.Code)
	}
}

// TestReloadSwapsServingModel: a valid candidate passes canary and
// atomically replaces the serving pipeline; /readyz reports the new
// version and the reload count.
func TestReloadSwapsServingModel(t *testing.T) {
	s := NewWithConfig(versionedPipe{marker: "v1"}, nil, Config{
		ModelVersion: "v1",
		Canary:       onionCanary,
		Loader: func() (Pipeline, string, error) {
			return versionedPipe{marker: "v2"}, "v2", nil
		},
	})
	s.SetReady(true)
	if got := annotateState(t, s); got != "v1" {
		t.Fatalf("serving %q before reload, want v1", got)
	}
	w := do(t, s, http.MethodPost, "/admin/reload", "")
	if w.Code != 200 {
		t.Fatalf("reload = %d: %s", w.Code, w.Body.String())
	}
	if got := annotateState(t, s); got != "v2" {
		t.Fatalf("serving %q after reload, want v2", got)
	}
	var ready readyResponse
	r := do(t, s, http.MethodGet, "/readyz", "")
	if err := json.Unmarshal(r.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Model != "v2" || ready.Reloads != 1 || ready.Reload.Last != "ok" {
		t.Fatalf("readyz after reload = %+v", ready)
	}
}

// TestReloadRejectsCanaryFailure: a candidate that misannotates the
// golden set is rejected with 422 and the old model keeps serving.
func TestReloadRejectsCanaryFailure(t *testing.T) {
	bad := versionedPipe{marker: "v2-bad"}
	s := NewWithConfig(versionedPipe{marker: "v1"}, nil, Config{
		ModelVersion: "v1",
		Canary:       []core.CanaryCase{{Phrase: "2 cups chopped onion", WantName: "something else"}},
		Loader: func() (Pipeline, string, error) {
			return bad, "v2-bad", nil
		},
	})
	s.SetReady(true)
	w := do(t, s, http.MethodPost, "/admin/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("canary-failing reload = %d, want 422", w.Code)
	}
	if !strings.Contains(w.Body.String(), "canary") {
		t.Fatalf("rejection body lacks canary detail: %s", w.Body.String())
	}
	if got := annotateState(t, s); got != "v1" {
		t.Fatalf("serving %q after rejected reload, want v1", got)
	}
	var ready readyResponse
	r := do(t, s, http.MethodGet, "/readyz", "")
	if err := json.Unmarshal(r.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Model != "v1" || ready.RejectedReloads != 1 || ready.Reload.Last != "rejected" {
		t.Fatalf("readyz after rejected reload = %+v", ready)
	}
}

// TestReloadRejectsCorruptBundle drives the real store loader against
// a deliberately corrupted bundle: the checksum passes (the corruption
// is in the payload the manifest describes) but the gob decode fails,
// the reload answers 422, and the old model keeps serving.
func TestReloadRejectsCorruptBundle(t *testing.T) {
	dir := t.TempDir()
	garbage := []byte("definitely not a gob bundle")
	sum := sha256.Sum256(garbage)
	verDir := filepath.Join(dir, "bundles", "v000001")
	if err := os.MkdirAll(verDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(verDir, "bundle.gob"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	man := fmt.Sprintf(`{"version":"v000001","size":%d,"sha256":"%s"}`, len(garbage), hex.EncodeToString(sum[:]))
	if err := os.WriteFile(filepath.Join(verDir, "MANIFEST.json"), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("v000001\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewWithConfig(versionedPipe{marker: "v0"}, nil, Config{
		ModelVersion: "v0",
		Canary:       onionCanary,
		Loader: func() (Pipeline, string, error) {
			st, err := persist.OpenStore(dir)
			if err != nil {
				return nil, "", err
			}
			_, _, v, err := st.Load()
			if err != nil {
				return nil, v, err
			}
			t.Fatal("corrupt store loaded cleanly")
			return nil, "", nil
		},
	})
	s.SetReady(true)
	w := do(t, s, http.MethodPost, "/admin/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt-bundle reload = %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "bundle.gob") {
		t.Fatalf("rejection does not name the corrupt artifact: %s", w.Body.String())
	}
	if got := annotateState(t, s); got != "v0" {
		t.Fatalf("serving %q after rejected reload, want v0", got)
	}
}

// TestReloadRejectsPanickingCandidate: a candidate that panics during
// the canary check is contained and rejected — the process survives.
func TestReloadRejectsPanickingCandidate(t *testing.T) {
	s := NewWithConfig(versionedPipe{marker: "v1"}, nil, Config{
		Canary: onionCanary,
		Loader: func() (Pipeline, string, error) {
			return panicPipe{}, "v2", nil
		},
	})
	s.SetReady(true)
	w := do(t, s, http.MethodPost, "/admin/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("panicking candidate = %d, want 422", w.Code)
	}
	if !strings.Contains(w.Body.String(), "panicked") {
		t.Fatalf("rejection body: %s", w.Body.String())
	}
	if got := annotateState(t, s); got != "v1" {
		t.Fatalf("serving %q, want v1", got)
	}
}

// panicPipe simulates a structurally loadable but broken model.
type panicPipe struct{ fakePipe }

func (panicPipe) AnnotateIngredient(string) core.IngredientRecord {
	panic("corrupt weights")
}

// TestReloadKeepsServingMidReload: while a slow reload is in progress
// (the loader is blocked), requests keep being served by the old
// model, and /readyz reports the reload as in progress.
func TestReloadKeepsServingMidReload(t *testing.T) {
	loaderEntered := make(chan struct{})
	loaderGate := make(chan struct{})
	s := NewWithConfig(versionedPipe{marker: "v1"}, nil, Config{
		Canary: onionCanary,
		Loader: func() (Pipeline, string, error) {
			close(loaderEntered)
			<-loaderGate
			return versionedPipe{marker: "v2"}, "v2", nil
		},
	})
	s.SetReady(true)

	reloadDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { reloadDone <- do(t, s, http.MethodPost, "/admin/reload", "") }()
	<-loaderEntered

	// mid-reload: old model serves, readyz shows in-progress.
	if got := annotateState(t, s); got != "v1" {
		t.Fatalf("mid-reload serving %q, want v1", got)
	}
	var ready readyResponse
	r := do(t, s, http.MethodGet, "/readyz", "")
	if err := json.Unmarshal(r.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Reload.InProgress {
		t.Fatalf("readyz mid-reload = %+v, want inProgress", ready)
	}

	close(loaderGate)
	if w := <-reloadDone; w.Code != 200 {
		t.Fatalf("reload = %d: %s", w.Code, w.Body.String())
	}
	if got := annotateState(t, s); got != "v2" {
		t.Fatalf("post-reload serving %q, want v2", got)
	}
}

// TestReloadDoesNotDropInFlight: a request already inside the old
// pipeline when the swap lands must complete successfully on the old
// model while new requests see the new one.
func TestReloadDoesNotDropInFlight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	old := versionedPipe{fakePipe: fakePipe{gate: gate, entered: entered}, marker: "v1"}
	s := NewWithConfig(old, nil, Config{
		Canary: onionCanary,
		Loader: func() (Pipeline, string, error) {
			return versionedPipe{marker: "v2"}, "v2", nil
		},
	})
	s.SetReady(true)

	inFlight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inFlight <- do(t, s, http.MethodPost, "/annotate", `{"phrase":"held"}`) }()
	// entered fires once the request is inside the old pipeline (past
	// the limiter), which is the state the reload must not disturb.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("held request never reached the pipe")
	}

	if w := do(t, s, http.MethodPost, "/admin/reload", ""); w.Code != 200 {
		t.Fatalf("reload = %d: %s", w.Code, w.Body.String())
	}
	// new requests are served by the new model...
	if got := annotateState(t, s); got != "v2" {
		t.Fatalf("post-swap serving %q, want v2", got)
	}
	// ...while the held request completes on the old one.
	close(gate)
	w := <-inFlight
	if w.Code != 200 {
		t.Fatalf("in-flight request across reload = %d", w.Code)
	}
	var rec core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "v1" {
		t.Fatalf("in-flight request served by %q, want the old model v1", rec.State)
	}
}

// Reload via the exported method (the SIGHUP path) behaves like the
// HTTP endpoint.
func TestReloadMethodDirect(t *testing.T) {
	s := NewWithConfig(versionedPipe{marker: "v1"}, nil, Config{
		Canary: onionCanary,
		Loader: func() (Pipeline, string, error) {
			return versionedPipe{marker: "v2"}, "v2", nil
		},
	})
	v, err := s.Reload()
	if err != nil || v != "v2" {
		t.Fatalf("Reload() = %q, %v", v, err)
	}
	if _, err := (&Server{}).Reload(); err == nil {
		t.Fatal("Reload without loader must error")
	}
}
