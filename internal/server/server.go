// Package server exposes the recipe-modeling pipeline as a JSON HTTP
// API — the deployment form of the paper's own artifact (RecipeDB is a
// web resource [1]). Endpoints:
//
//	POST /annotate       {"phrase": "..."}                  → IngredientRecord
//	POST /annotate/batch {"phrases": ["...", ...]}          → []IngredientRecord (worker-pool fan-out)
//	POST /model          {"title","cuisine","ingredients":[],"instructions":""} → RecipeModel + nutrition
//	POST /search         {"ingredients":[],"processes":[],...} → matching recipe titles
//	GET  /healthz                                            → 200 ok
//
// The server owns a trained pipeline and, optionally, an indexed
// corpus for /search.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"recipemodel/internal/core"
	"recipemodel/internal/index"
	"recipemodel/internal/nutrition"
)

// Pipeline is the subset of the pipeline API the server needs;
// satisfied by the public recipemodel.Pipeline via a thin adapter or
// by core-level components directly.
type Pipeline interface {
	AnnotateIngredient(phrase string) core.IngredientRecord
	// AnnotateIngredients is the batch form behind /annotate/batch;
	// implementations fan out over a worker pool and must return
	// record i for phrase i.
	AnnotateIngredients(phrases []string) []core.IngredientRecord
	ModelRecipe(title, cuisine string, ingredientLines []string, instructions string) *core.RecipeModel
}

// Server is the HTTP handler set.
type Server struct {
	pipe      Pipeline
	estimator *nutrition.Estimator
	ix        *index.Index
	mux       *http.ServeMux
}

// New builds a server around a trained pipeline; ix may be nil, which
// disables /search with a 503.
func New(pipe Pipeline, ix *index.Index) *Server {
	s := &Server{
		pipe:      pipe,
		estimator: nutrition.NewEstimator(),
		ix:        ix,
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/annotate", s.handleAnnotate)
	s.mux.HandleFunc("/annotate/batch", s.handleAnnotateBatch)
	s.mux.HandleFunc("/model", s.handleModel)
	s.mux.HandleFunc("/search", s.handleSearch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// writeJSON writes v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// decode reads a JSON body with a sane size cap.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// annotateRequest is the /annotate payload.
type annotateRequest struct {
	Phrase string `json:"phrase"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Phrase == "" {
		httpError(w, http.StatusBadRequest, "phrase is required")
		return
	}
	writeJSON(w, s.pipe.AnnotateIngredient(req.Phrase))
}

// batchAnnotateRequest is the /annotate/batch payload.
type batchAnnotateRequest struct {
	Phrases []string `json:"phrases"`
}

// maxBatchPhrases caps one /annotate/batch request; corpus-scale
// clients should stream chunks of this size.
const maxBatchPhrases = 10000

func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchAnnotateRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Phrases) == 0 {
		httpError(w, http.StatusBadRequest, "phrases are required")
		return
	}
	if len(req.Phrases) > maxBatchPhrases {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d phrases per batch", maxBatchPhrases))
		return
	}
	writeJSON(w, s.pipe.AnnotateIngredients(req.Phrases))
}

// modelRequest is the /model payload.
type modelRequest struct {
	Title        string   `json:"title"`
	Cuisine      string   `json:"cuisine"`
	Ingredients  []string `json:"ingredients"`
	Instructions string   `json:"instructions"`
}

// modelResponse wraps the mined model with its nutrition estimate.
type modelResponse struct {
	Model     *core.RecipeModel `json:"model"`
	Nutrition nutrition.Profile `json:"nutrition"`
	Resolved  int               `json:"resolvedIngredients"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req modelRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Ingredients) == 0 {
		httpError(w, http.StatusBadRequest, "ingredients are required")
		return
	}
	m := s.pipe.ModelRecipe(req.Title, req.Cuisine, req.Ingredients, req.Instructions)
	profile, resolved := s.estimator.EstimateRecipe(m)
	writeJSON(w, modelResponse{Model: m, Nutrition: profile, Resolved: resolved})
}

// searchRequest mirrors index.Query with JSON tags.
type searchRequest struct {
	Ingredients []string `json:"ingredients"`
	Processes   []string `json:"processes"`
	Utensils    []string `json:"utensils"`
	Cuisine     string   `json:"cuisine"`
}

// searchHit is one /search result row.
type searchHit struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Cuisine string `json:"cuisine"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.ix == nil {
		httpError(w, http.StatusServiceUnavailable, "no corpus indexed")
		return
	}
	var req searchRequest
	if !decode(w, r, &req) {
		return
	}
	hits := s.ix.Search(index.Query{
		Ingredients: req.Ingredients,
		Processes:   req.Processes,
		Utensils:    req.Utensils,
		Cuisine:     req.Cuisine,
	})
	out := make([]searchHit, 0, len(hits))
	for _, id := range hits {
		m := s.ix.Model(id)
		out = append(out, searchHit{ID: id, Title: m.Title, Cuisine: m.Cuisine})
	}
	writeJSON(w, out)
}
