// Package server exposes the recipe-modeling pipeline as a JSON HTTP
// API — the deployment form of the paper's own artifact (RecipeDB is a
// web resource [1]). Endpoints:
//
//	POST /annotate       {"phrase": "..."}                  → IngredientRecord
//	POST /annotate/batch {"phrases": ["...", ...]}          → []IngredientRecord (worker-pool fan-out)
//	POST /model          {"title","cuisine","ingredients":[],"instructions":""} → RecipeModel + nutrition
//	POST /search         {"ingredients":[],"processes":[],...} → matching recipe titles
//	POST /admin/reload                                       → validated hot model reload
//	GET  /healthz                                            → 200 ok (liveness)
//	GET  /readyz                                             → 200 ready / 503 starting (readiness + reload state)
//
// The server owns a trained pipeline and, optionally, an indexed
// corpus for /search, and composes the resilience layer in front of
// every handler: panic recovery (a handler bug is a 500, never process
// death), a per-request deadline threaded through the batch pipeline
// APIs (a dead client stops burning CPU), and weighted admission
// control (batch requests count their phrases) that sheds excess load
// with 429 + Retry-After instead of queueing without bound.
//
// The serving pipeline is hot-swappable: /admin/reload (or SIGHUP in
// cmd/recipeserver) loads a candidate bundle off to the side through
// Config.Loader, annotates a pinned golden phrase set with it (the
// canary self-check), and only on a clean pass atomically swaps it
// into the serving position. A load error or canary miss rejects the
// candidate and the previous model keeps serving — in-flight requests
// are never dropped either way, because each request resolves the
// pipeline pointer once at admission.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/index"
	"recipemodel/internal/nutrition"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/resilience"
)

// FaultServe fires at the top of every routed request (before the
// handler body); arming it with a panic proves containment through the
// real middleware stack, with latency it holds requests in flight for
// shedding tests (see internal/faults).
const FaultServe = "server.serve"

var _ = faults.MustRegister(FaultServe)

// Pipeline is the subset of the pipeline API the server needs;
// satisfied by the public recipemodel.Pipeline via a thin adapter or
// by core-level components directly. The batch and model calls take
// the request context so a client disconnect or deadline stops the
// worker-pool computation instead of leaking it.
type Pipeline interface {
	AnnotateIngredient(phrase string) core.IngredientRecord
	// AnnotateIngredientChecked is the containment-aware single-phrase
	// form behind /annotate: a poison phrase comes back as a typed
	// quarantine error instead of an empty record, so the handler can
	// answer 422 with a machine-readable code.
	AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error)
	// AnnotateIngredientsContext is the batch form behind
	// /annotate/batch; implementations fan out over a worker pool,
	// return record i for phrase i, and honor ctx cancellation.
	AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error)
	// AnnotateIngredientsPartial is the partial-result batch form: one
	// poison phrase costs one rejection, not the batch. Slot i of the
	// records is meaningful iff no rejection carries index i.
	AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error)
	ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error)
}

// Config tunes the resilience layer; the zero value disables all
// limits (useful for tests that target handler logic alone).
type Config struct {
	// MaxInFlight caps admitted work units across all requests: a
	// single annotate/model/search weighs 1, a batch weighs its phrase
	// count. 0 means unlimited.
	MaxInFlight int
	// RequestTimeout bounds each request's context; handlers observe
	// it through ctx and answer 503 when mining overruns. 0 disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Logger receives panic stacks; nil uses log.Default().
	Logger *log.Logger
	// Loader loads a candidate pipeline (plus its version label) for
	// hot reload. nil disables /admin/reload with a 503.
	Loader func() (Pipeline, string, error)
	// Canary overrides the golden phrase set a reload candidate must
	// annotate correctly before it may serve; nil uses core.CanarySet.
	Canary []core.CanaryCase
	// ModelVersion labels the initially served model in /readyz.
	ModelVersion string
}

// pipeState pairs the serving pipeline with its version label; it is
// swapped as a unit so /readyz never reports a version the handlers
// are not actually serving.
type pipeState struct {
	pipe    Pipeline
	version string
}

// reloadInfo is the observable state of the reload machine, published
// on /readyz.
type reloadInfo struct {
	// InProgress is true while a candidate is loading or in canary.
	InProgress bool `json:"inProgress"`
	// Last is "" before any reload, then "ok" or "rejected".
	Last string `json:"last,omitempty"`
	// Detail carries the rejection reason or the adopted version.
	Detail string `json:"detail,omitempty"`
}

// Server is the HTTP handler set.
type Server struct {
	pipe      atomic.Value // pipeState
	estimator *nutrition.Estimator
	ix        *index.Index
	handler   http.Handler
	limiter   *resilience.Limiter
	cfg       Config
	ready     atomic.Bool
	// reloadMu serializes reloads; handlers never take it, so a slow
	// candidate load cannot stall serving.
	reloadMu    sync.Mutex
	reloadState atomic.Value // reloadInfo
	reloads     atomic.Int64
	rejected    atomic.Int64
	// quarantined tallies every record-level rejection the annotate
	// endpoints produced over the server's lifetime; published on
	// /readyz so operators can alert on poison-input rates by code.
	quarantined quarantine.Counters
}

// New builds a server around a trained pipeline with no limits; ix may
// be nil, which disables /search with a 503. Production callers want
// NewWithConfig.
func New(pipe Pipeline, ix *index.Index) *Server {
	return NewWithConfig(pipe, ix, Config{})
}

// NewWithConfig builds a server with the full resilience layer wired:
// mux → recovery → deadline → handlers (admission checks run inside
// handlers, after decode, so batch weights are known).
func NewWithConfig(pipe Pipeline, ix *index.Index, cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		estimator: nutrition.NewEstimator(),
		ix:        ix,
		limiter:   resilience.NewLimiter(cfg.MaxInFlight),
		cfg:       cfg,
	}
	s.pipe.Store(pipeState{pipe: pipe, version: cfg.ModelVersion})
	s.reloadState.Store(reloadInfo{})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/annotate", s.handleAnnotate)
	mux.HandleFunc("/annotate/batch", s.handleAnnotateBatch)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/admin/reload", s.handleReload)
	s.handler = resilience.Recover(cfg.Logger,
		resilience.Deadline(cfg.RequestTimeout, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if err := faults.Inject(FaultServe); err != nil {
				httpError(w, http.StatusInternalServerError, "injected fault: "+err.Error())
				return
			}
			mux.ServeHTTP(w, r)
		})))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// SetReady flips the /readyz answer; cmd/recipeserver flips it true
// once training and corpus indexing complete, and back to false while
// draining so load balancers stop routing new work here.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// pipeline resolves the serving pipeline once; a handler holds the
// same pipeline for its whole request even if a reload swaps the
// pointer mid-flight.
func (s *Server) pipeline() Pipeline { return s.pipe.Load().(pipeState).pipe }

// ModelVersion reports the version label of the serving pipeline.
func (s *Server) ModelVersion() string { return s.pipe.Load().(pipeState).version }

// canarySet returns the golden phrases a reload candidate must pass.
func (s *Server) canarySet() []core.CanaryCase {
	if s.cfg.Canary != nil {
		return s.cfg.Canary
	}
	return core.CanarySet()
}

// runCanary annotates the golden set with the candidate. A panic in
// the candidate (a plausibly corrupt model) is caught and reported as
// a rejection, never allowed to take the server down.
func runCanary(cand Pipeline, cases []core.CanaryCase) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("candidate panicked during canary: %v", rec)
		}
	}()
	for _, c := range cases {
		rec := cand.AnnotateIngredient(c.Phrase)
		if rec.Name != c.WantName {
			return fmt.Errorf("canary %q: candidate extracted name %q, want %q", c.Phrase, rec.Name, c.WantName)
		}
	}
	return nil
}

// Reload runs the validated hot-reload sequence: load a candidate via
// Config.Loader, canary-check it, and atomically swap it into the
// serving position. On any failure the old pipeline keeps serving and
// the error describes the rejection. Reloads are serialized; a second
// caller waits for the first to finish.
func (s *Server) Reload() (version string, err error) {
	if s.cfg.Loader == nil {
		return "", errors.New("no loader configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloadState.Store(reloadInfo{InProgress: true, Last: s.lastReload().Last})
	version, err = s.reloadLocked()
	if err != nil {
		s.rejected.Add(1)
		s.reloadState.Store(reloadInfo{Last: "rejected", Detail: err.Error()})
		return version, err
	}
	s.reloads.Add(1)
	s.reloadState.Store(reloadInfo{Last: "ok", Detail: version})
	return version, nil
}

func (s *Server) lastReload() reloadInfo { return s.reloadState.Load().(reloadInfo) }

func (s *Server) reloadLocked() (string, error) {
	cand, version, err := s.cfg.Loader()
	if err != nil {
		return version, fmt.Errorf("load candidate: %w", err)
	}
	if cand == nil {
		return version, errors.New("loader returned no pipeline")
	}
	if err := runCanary(cand, s.canarySet()); err != nil {
		return version, err
	}
	s.pipe.Store(pipeState{pipe: cand, version: version})
	return version, nil
}

// reloadResponse is the /admin/reload success payload.
type reloadResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Canary  int    `json:"canaryPhrases"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cfg.Loader == nil {
		httpError(w, http.StatusServiceUnavailable, "hot reload not configured (no model store)")
		return
	}
	version, err := s.Reload()
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error":    "reload rejected: " + err.Error(),
			"rejected": version,
			"serving":  s.ModelVersion(),
		})
		return
	}
	writeJSON(w, reloadResponse{Status: "ok", Version: version, Canary: len(s.canarySet())})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// readyResponse is the /readyz payload: readiness plus the model
// version being served and the reload state machine's position, so an
// operator (or a deploy script polling after /admin/reload) can see
// whether the new model actually took.
type readyResponse struct {
	Ready           bool       `json:"ready"`
	Model           string     `json:"model,omitempty"`
	Reloads         int64      `json:"reloads"`
	RejectedReloads int64      `json:"rejectedReloads"`
	Reload          reloadInfo `json:"reload"`
	// Quarantined counts record-level rejections served by the annotate
	// endpoints since startup, cumulative and broken down by taxonomy
	// code.
	Quarantined       int64                     `json:"quarantined"`
	QuarantinedByCode map[quarantine.Code]int64 `json:"quarantinedByCode,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := readyResponse{
		Ready:             s.ready.Load(),
		Model:             s.ModelVersion(),
		Reloads:           s.reloads.Load(),
		RejectedReloads:   s.rejected.Load(),
		Reload:            s.lastReload(),
		Quarantined:       s.quarantined.Total(),
		QuarantinedByCode: s.quarantined.ByCode(),
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// admit reserves weight units of pipeline work for this request,
// shedding with 429 + Retry-After when the server is at capacity. On
// success the caller must invoke the returned release.
func (s *Server) admit(w http.ResponseWriter, weight int) (release func(), ok bool) {
	release, ok = s.limiter.TryAcquire(weight)
	if !ok {
		resilience.ShedJSON(w, s.cfg.RetryAfter)
		return nil, false
	}
	return release, true
}

// writeJSON writes v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ctxError maps a pipeline context error to the right response: 503
// with a Retry-After when the per-request deadline expired (the server
// shed the tail of the work), nothing when the client itself went away
// (no one is reading).
func (s *Server) ctxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "request deadline exceeded")
	}
}

// maxBody caps request bodies (1 MiB).
const maxBody = 1 << 20

// decode reads a JSON body with a sane size cap. Oversized bodies are
// 413, malformed ones 400, non-POST methods 405.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// annotateRequest is the /annotate payload.
type annotateRequest struct {
	Phrase string `json:"phrase"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Phrase == "" {
		httpError(w, http.StatusBadRequest, "phrase is required")
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	rec, err := s.pipeline().AnnotateIngredientChecked(req.Phrase)
	if err != nil {
		rej := quarantine.Reject(0, req.Phrase, err)
		s.quarantined.Observe(rej.Code)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error":  "phrase rejected",
			"code":   string(rej.Code),
			"detail": rej.Detail,
		})
		return
	}
	writeJSON(w, rec)
}

// batchAnnotateRequest is the /annotate/batch payload.
type batchAnnotateRequest struct {
	Phrases []string `json:"phrases"`
}

// maxBatchPhrases caps one /annotate/batch request; corpus-scale
// clients should stream chunks of this size.
const maxBatchPhrases = 10000

// batchItem is one per-phrase result in a /annotate/batch response:
// either an annotated record or a typed rejection. Item i answers
// phrase i.
type batchItem struct {
	Status string                 `json:"status"` // "ok" or "rejected"
	Record *core.IngredientRecord `json:"record,omitempty"`
	Code   quarantine.Code        `json:"code,omitempty"`
	Detail string                 `json:"detail,omitempty"`
}

// batchResponse is the /annotate/batch payload: per-item statuses plus
// roll-up counts. The HTTP status follows the 207 Multi-Status idea:
// 200 when every phrase annotated, 207 on a mix, 422 when every phrase
// was rejected.
type batchResponse struct {
	Results  []batchItem `json:"results"`
	OK       int         `json:"ok"`
	Rejected int         `json:"rejected"`
}

func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchAnnotateRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Phrases) == 0 {
		httpError(w, http.StatusBadRequest, "phrases are required")
		return
	}
	if len(req.Phrases) > maxBatchPhrases {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d phrases per batch", maxBatchPhrases))
		return
	}
	// a batch occupies as many admission units as it has phrases, so
	// one giant batch can't starve the interactive endpoints silently.
	release, ok := s.admit(w, len(req.Phrases))
	if !ok {
		return
	}
	defer release()
	recs, rejs, err := s.pipeline().AnnotateIngredientsPartial(r.Context(), req.Phrases)
	if err != nil {
		s.ctxError(w, err)
		return
	}
	resp := batchResponse{Results: make([]batchItem, len(req.Phrases))}
	for i := range resp.Results {
		rec := recs[i]
		resp.Results[i] = batchItem{Status: "ok", Record: &rec}
	}
	for _, rej := range rejs {
		s.quarantined.Observe(rej.Code)
		resp.Results[rej.Index] = batchItem{Status: "rejected", Code: rej.Code, Detail: rej.Detail}
	}
	resp.Rejected = len(rejs)
	resp.OK = len(req.Phrases) - resp.Rejected
	status := http.StatusOK
	switch {
	case resp.OK == 0:
		status = http.StatusUnprocessableEntity
	case resp.Rejected > 0:
		status = http.StatusMultiStatus
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// modelRequest is the /model payload.
type modelRequest struct {
	Title        string   `json:"title"`
	Cuisine      string   `json:"cuisine"`
	Ingredients  []string `json:"ingredients"`
	Instructions string   `json:"instructions"`
}

// modelResponse wraps the mined model with its nutrition estimate.
type modelResponse struct {
	Model     *core.RecipeModel `json:"model"`
	Nutrition nutrition.Profile `json:"nutrition"`
	Resolved  int               `json:"resolvedIngredients"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req modelRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Ingredients) == 0 {
		httpError(w, http.StatusBadRequest, "ingredients are required")
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	m, err := s.pipeline().ModelRecipeContext(r.Context(), req.Title, req.Cuisine, req.Ingredients, req.Instructions)
	if err != nil {
		s.ctxError(w, err)
		return
	}
	profile, resolved := s.estimator.EstimateRecipe(m)
	writeJSON(w, modelResponse{Model: m, Nutrition: profile, Resolved: resolved})
}

// searchRequest mirrors index.Query with JSON tags.
type searchRequest struct {
	Ingredients []string `json:"ingredients"`
	Processes   []string `json:"processes"`
	Utensils    []string `json:"utensils"`
	Cuisine     string   `json:"cuisine"`
}

// searchHit is one /search result row.
type searchHit struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Cuisine string `json:"cuisine"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.ix == nil {
		httpError(w, http.StatusServiceUnavailable, "no corpus indexed")
		return
	}
	var req searchRequest
	if !decode(w, r, &req) {
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	hits := s.ix.Search(index.Query{
		Ingredients: req.Ingredients,
		Processes:   req.Processes,
		Utensils:    req.Utensils,
		Cuisine:     req.Cuisine,
	})
	out := make([]searchHit, 0, len(hits))
	for _, id := range hits {
		m := s.ix.Model(id)
		out = append(out, searchHit{ID: id, Title: m.Title, Cuisine: m.Cuisine})
	}
	writeJSON(w, out)
}
