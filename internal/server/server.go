// Package server exposes the recipe-modeling pipeline as a JSON HTTP
// API — the deployment form of the paper's own artifact (RecipeDB is a
// web resource [1]). Endpoints:
//
//	POST /annotate       {"phrase": "..."}                  → IngredientRecord
//	POST /annotate/batch {"phrases": ["...", ...]}          → []IngredientRecord (worker-pool fan-out)
//	POST /model          {"title","cuisine","ingredients":[],"instructions":""} → RecipeModel + nutrition
//	POST /search         {"ingredients":[],"processes":[],...} → matching recipe titles
//	POST /admin/reload                                       → validated hot model reload
//	GET  /healthz                                            → 200 ok (liveness)
//	GET  /readyz                                             → 200 ready / 503 starting (readiness + reload state)
//
// The server owns a trained pipeline and, optionally, an indexed
// corpus for /search, and composes the resilience layer in front of
// every handler: panic recovery (a handler bug is a 500, never process
// death), a per-request deadline threaded through the batch pipeline
// APIs (a dead client stops burning CPU), and weighted admission
// control (batch requests count their phrases) that sheds excess load
// with 429 + Retry-After instead of queueing without bound.
//
// The serving pipeline is hot-swappable: /admin/reload (or SIGHUP in
// cmd/recipeserver) loads a candidate bundle off to the side through
// Config.Loader, annotates a pinned golden phrase set with it (the
// canary self-check), and only on a clean pass atomically swaps it
// into the serving position. A load error or canary miss rejects the
// candidate and the previous model keeps serving — in-flight requests
// are never dropped either way, because each request resolves the
// pipeline pointer once at admission.
//
// Heavy-tail traffic shape (DESIGN §13): real ingredient traffic is
// massively duplicated, so with Config.CacheEntries > 0 the annotate
// endpoints memoize successful decodes in a sharded LRU keyed on
// core.CanonicalKey(phrase) and coalesce concurrent misses for one
// phrase into a single decode (internal/flight). The cache is
// generation-pinned: each request resolves {pipeline, version,
// generation} as one atomic unit, entries carry the generation that
// produced them, and a hot reload bumps the generation — so a cached
// record is served only to requests resolving the very pipeline that
// computed it, and a reload invalidates without a stop-the-world
// flush. Under overload the cache keeps the hot set alive: hits cost
// no admission weight and are served even when the limiter is
// saturated (counted as degraded-mode serves), while misses shed with
// 429 + Retry-After.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"recipemodel/internal/breaker"
	"recipemodel/internal/cache"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/flight"
	"recipemodel/internal/index"
	"recipemodel/internal/nutrition"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/resilience"
	"recipemodel/internal/snapshot"
)

// FaultServe fires at the top of every routed request (before the
// handler body); arming it with a panic proves containment through the
// real middleware stack, with latency it holds requests in flight for
// shedding tests (see internal/faults).
const FaultServe = "server.serve"

var _ = faults.MustRegister(FaultServe)

// Pipeline is the subset of the pipeline API the server needs;
// satisfied by the public recipemodel.Pipeline via a thin adapter or
// by core-level components directly. The batch and model calls take
// the request context so a client disconnect or deadline stops the
// worker-pool computation instead of leaking it.
type Pipeline interface {
	AnnotateIngredient(phrase string) core.IngredientRecord
	// AnnotateIngredientChecked is the containment-aware single-phrase
	// form behind /annotate: a poison phrase comes back as a typed
	// quarantine error instead of an empty record, so the handler can
	// answer 422 with a machine-readable code.
	AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error)
	// AnnotateIngredientsContext is the batch form behind
	// /annotate/batch; implementations fan out over a worker pool,
	// return record i for phrase i, and honor ctx cancellation.
	AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error)
	// AnnotateIngredientsPartial is the partial-result batch form: one
	// poison phrase costs one rejection, not the batch. Slot i of the
	// records is meaningful iff no rejection carries index i.
	AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error)
	ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error)
}

// Config tunes the resilience layer; the zero value disables all
// limits (useful for tests that target handler logic alone).
type Config struct {
	// MaxInFlight caps admitted work units across all requests: a
	// single annotate/model/search weighs 1, a batch weighs its phrase
	// count. 0 means unlimited.
	MaxInFlight int
	// RequestTimeout bounds each request's context; handlers observe
	// it through ctx and answer 503 when mining overruns. 0 disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Logger receives panic stacks; nil uses log.Default().
	Logger *log.Logger
	// Loader loads a candidate pipeline (plus its version label) for
	// hot reload. nil disables /admin/reload with a 503.
	Loader func() (Pipeline, string, error)
	// Canary overrides the golden phrase set a reload candidate must
	// annotate correctly before it may serve; nil uses core.CanarySet.
	Canary []core.CanaryCase
	// ModelVersion labels the initially served model in /readyz.
	ModelVersion string
	// CacheEntries bounds the annotation cache (in entries); 0
	// disables caching and request coalescing entirely, restoring the
	// decode-every-request behavior.
	CacheEntries int
	// CorpusSnapshot is the initial mined corpus served by the /query
	// endpoints; nil disables them with a 503.
	CorpusSnapshot *snapshot.Snapshot
	// CorpusShards is the number of in-memory shards the corpus is
	// partitioned into (clamped to [1, docs]).
	CorpusShards int
	// CorpusLoader loads a candidate snapshot for corpus hot reload;
	// nil disables /admin/reload/corpus with a 503.
	CorpusLoader func() (*snapshot.Snapshot, error)
	// QueryShardBudget bounds each query's per-shard fan-out: a shard
	// that has not answered within the budget is skipped (the query
	// degrades to partial results) and marked unhealthy. 0 leaves only
	// the request deadline in force.
	QueryShardBudget time.Duration
	// Rules is the deterministic fallback annotation tier (DESIGN
	// §15). Setting it arms the full degradation ladder — CRF → cache
	// hot-set → rules tier → shed — and the CRF-tier circuit breaker.
	// nil disables both: annotation behavior (and bytes) match the
	// pre-tier server exactly.
	Rules RulesAnnotator
	// RulesRoute enables the healthy-mode short circuit: phrases the
	// rules tier annotates at >= RulesThreshold confidence are served
	// from it directly while the breaker is closed. Off by default —
	// routed responses are not byte-identical to CRF decodes.
	RulesRoute bool
	// RulesThreshold is the minimum rules-tier confidence for routing
	// and agreement audits (default 1: only fully-covered phrases).
	RulesThreshold float64
	// Breaker tunes the CRF-tier circuit breaker; zero-value fields
	// take the breaker package defaults. Ignored when Rules is nil.
	Breaker breaker.Config
	// AgreementSample runs the cross-tier agreement audit on every
	// Nth successful CRF decode (0 disables auditing).
	AgreementSample int
}

// pipeState pairs the serving pipeline with its version label and
// cache generation; it is swapped as a unit so /readyz never reports
// a version the handlers are not actually serving, and so a cached
// record can never be served to a request resolving a different
// pipeline than the one that computed it (the generation a request
// reads is, by construction, the generation of the pipeline it
// decodes with).
type pipeState struct {
	pipe    Pipeline
	version string
	gen     uint64
}

// reloadInfo is the observable state of the reload machine, published
// on /readyz.
type reloadInfo struct {
	// InProgress is true while a candidate is loading or in canary.
	InProgress bool `json:"inProgress"`
	// Last is "" before any reload, then "ok" or "rejected".
	Last string `json:"last,omitempty"`
	// Detail carries the rejection reason or the adopted version.
	Detail string `json:"detail,omitempty"`
}

// Server is the HTTP handler set.
type Server struct {
	pipe      atomic.Value // pipeState
	estimator *nutrition.Estimator
	ix        *index.Index
	handler   http.Handler
	limiter   *resilience.Limiter
	cfg       Config
	ready     atomic.Bool
	// reloadMu serializes reloads; handlers never take it, so a slow
	// candidate load cannot stall serving.
	reloadMu    sync.Mutex
	reloadState atomic.Value // reloadInfo
	reloads     atomic.Int64
	rejected    atomic.Int64
	// quarantined tallies every record-level rejection the annotate
	// endpoints produced over the server's lifetime; published on
	// /readyz so operators can alert on poison-input rates by code.
	quarantined quarantine.Counters
	// cache memoizes successful ingredient decodes keyed on canonical
	// phrase bytes; nil when Config.CacheEntries is 0 (every lookup
	// misses and the handlers take the decode path unconditionally).
	cache *cache.Cache[core.IngredientRecord]
	// flights coalesces concurrent uncached decodes of one phrase so a
	// thundering herd costs a single decode. Keys carry the generation,
	// so a reload mid-herd starts fresh flights for the new model.
	flights flight.Group[core.IngredientRecord]
	// shedTotal counts every 429 this server answered; degradedHits
	// counts cache hits served while the limiter was saturated — the
	// observable signature of degraded mode (still answering the hot
	// set while shedding cold misses).
	shedTotal    atomic.Int64
	degradedHits atomic.Int64
	// corpus holds the generation-pinned *corpusState serving the
	// /query endpoints; swapped atomically by ReloadCorpus, resolved
	// once per request (see query.go). corpusMu serializes reloads;
	// query handlers never take it.
	corpus          atomic.Value
	corpusMu        sync.Mutex
	corpusReloads   atomic.Int64
	corpusRejected  atomic.Int64
	degradedQueries atomic.Int64
	// brk is the CRF-tier circuit breaker; nil unless Config.Rules is
	// set (a nil breaker always admits — see internal/breaker), so
	// the no-tier configuration cannot trip and stays byte-identical
	// to the pre-tier server.
	brk *breaker.Breaker
	// Tier traffic counters (DESIGN §15), published on /readyz.
	crfServed     atomic.Int64
	rulesRouted   atomic.Int64
	rulesDegraded atomic.Int64
	// Cross-tier agreement audit state: auditTick drives the
	// deterministic every-Nth sampling; sampled/disagree are the
	// published results.
	auditTick     atomic.Uint64
	auditSampled  atomic.Int64
	auditDisagree atomic.Int64
}

// New builds a server around a trained pipeline with no limits; ix may
// be nil, which disables /search with a 503. Production callers want
// NewWithConfig.
func New(pipe Pipeline, ix *index.Index) *Server {
	return NewWithConfig(pipe, ix, Config{})
}

// NewWithConfig builds a server with the full resilience layer wired:
// mux → recovery → deadline → handlers (admission checks run inside
// handlers, after decode, so batch weights are known).
func NewWithConfig(pipe Pipeline, ix *index.Index, cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RulesThreshold <= 0 {
		cfg.RulesThreshold = 1
	}
	s := &Server{
		estimator: nutrition.NewEstimator(),
		ix:        ix,
		limiter:   resilience.NewLimiter(cfg.MaxInFlight),
		cfg:       cfg,
		cache:     cache.New[core.IngredientRecord](cfg.CacheEntries),
	}
	if cfg.Rules != nil {
		s.brk = breaker.New(cfg.Breaker)
	}
	s.pipe.Store(pipeState{pipe: pipe, version: cfg.ModelVersion, gen: 1})
	s.reloadState.Store(reloadInfo{})
	if cfg.CorpusSnapshot != nil && len(cfg.CorpusSnapshot.Models) > 0 {
		s.corpus.Store(newCorpusState(cfg.CorpusSnapshot, cfg.CorpusShards))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/annotate", s.handleAnnotate)
	mux.HandleFunc("/annotate/batch", s.handleAnnotateBatch)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/query/similar", s.handleQuerySimilar)
	mux.HandleFunc("/query/search", s.handleQuerySearch)
	mux.HandleFunc("/query/nutrition", s.handleQueryNutrition)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/reload/corpus", s.handleReloadCorpus)
	s.handler = resilience.Recover(cfg.Logger,
		resilience.Deadline(cfg.RequestTimeout, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if err := faults.Inject(FaultServe); err != nil {
				httpError(w, http.StatusInternalServerError, "injected fault: "+err.Error())
				return
			}
			mux.ServeHTTP(w, r)
		})))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// SetReady flips the /readyz answer; cmd/recipeserver flips it true
// once training and corpus indexing complete, and back to false while
// draining so load balancers stop routing new work here.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// state resolves the serving {pipeline, version, generation} triple
// once; a handler holds the same state for its whole request even if
// a reload swaps the pointer mid-flight, which is what makes the
// cache's generation pinning airtight: a record is cached and served
// under the generation of the pipeline that computed it.
func (s *Server) state() pipeState { return s.pipe.Load().(pipeState) }

// pipeline resolves the serving pipeline once; a handler holds the
// same pipeline for its whole request even if a reload swaps the
// pointer mid-flight.
func (s *Server) pipeline() Pipeline { return s.state().pipe }

// ModelVersion reports the version label of the serving pipeline.
func (s *Server) ModelVersion() string { return s.state().version }

// Generation reports the cache generation of the serving pipeline;
// it starts at 1 and increments on every adopted reload.
func (s *Server) Generation() uint64 { return s.state().gen }

// canarySet returns the golden phrases a reload candidate must pass.
func (s *Server) canarySet() []core.CanaryCase {
	if s.cfg.Canary != nil {
		return s.cfg.Canary
	}
	return core.CanarySet()
}

// runCanary annotates the golden set with the candidate. A panic in
// the candidate (a plausibly corrupt model) is caught and reported as
// a rejection, never allowed to take the server down.
func runCanary(cand Pipeline, cases []core.CanaryCase) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("candidate panicked during canary: %v", rec)
		}
	}()
	for _, c := range cases {
		rec := cand.AnnotateIngredient(c.Phrase)
		if rec.Name != c.WantName {
			return fmt.Errorf("canary %q: candidate extracted name %q, want %q", c.Phrase, rec.Name, c.WantName)
		}
	}
	return nil
}

// Reload runs the validated hot-reload sequence: load a candidate via
// Config.Loader, canary-check it, and atomically swap it into the
// serving position. On any failure the old pipeline keeps serving and
// the error describes the rejection. Reloads are serialized; a second
// caller waits for the first to finish.
func (s *Server) Reload() (version string, err error) {
	if s.cfg.Loader == nil {
		return "", errors.New("no loader configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloadState.Store(reloadInfo{InProgress: true, Last: s.lastReload().Last})
	version, err = s.reloadLocked()
	if err != nil {
		s.rejected.Add(1)
		s.reloadState.Store(reloadInfo{Last: "rejected", Detail: err.Error()})
		// A canary-rejected (or unloadable) candidate is a CRF-tier
		// health signal: feed the breaker window out of band.
		s.brk.Report(false)
		return version, err
	}
	s.reloads.Add(1)
	s.reloadState.Store(reloadInfo{Last: "ok", Detail: version})
	return version, nil
}

func (s *Server) lastReload() reloadInfo { return s.reloadState.Load().(reloadInfo) }

func (s *Server) reloadLocked() (string, error) {
	cand, version, err := s.cfg.Loader()
	if err != nil {
		return version, fmt.Errorf("load candidate: %w", err)
	}
	if cand == nil {
		return version, errors.New("loader returned no pipeline")
	}
	if err := runCanary(cand, s.canarySet()); err != nil {
		return version, err
	}
	// Bumping the generation with the pipeline swap is the whole cache
	// invalidation: entries decoded by the old model carry the old
	// generation and no request resolving the new state can read them
	// (they age out lazily — no stop-the-world flush). A decode still
	// in flight under the old state caches its result under the old
	// generation, where it is equally unreachable.
	old := s.state()
	s.pipe.Store(pipeState{pipe: cand, version: version, gen: old.gen + 1})
	return version, nil
}

// reloadResponse is the /admin/reload success payload.
type reloadResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Canary  int    `json:"canaryPhrases"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cfg.Loader == nil {
		httpError(w, http.StatusServiceUnavailable, "hot reload not configured (no model store)")
		return
	}
	version, err := s.Reload()
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"error":    "reload rejected: " + err.Error(),
			"rejected": version,
			"serving":  s.ModelVersion(),
		})
		return
	}
	writeJSON(w, reloadResponse{Status: "ok", Version: version, Canary: len(s.canarySet())})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// readyResponse is the /readyz payload: readiness plus the model
// version being served and the reload state machine's position, so an
// operator (or a deploy script polling after /admin/reload) can see
// whether the new model actually took.
type readyResponse struct {
	Ready           bool       `json:"ready"`
	Model           string     `json:"model,omitempty"`
	Reloads         int64      `json:"reloads"`
	RejectedReloads int64      `json:"rejectedReloads"`
	Reload          reloadInfo `json:"reload"`
	// Quarantined counts record-level rejections served by the annotate
	// endpoints since startup, cumulative and broken down by taxonomy
	// code.
	Quarantined       int64                     `json:"quarantined"`
	QuarantinedByCode map[quarantine.Code]int64 `json:"quarantinedByCode,omitempty"`
	// Cache reports the annotation cache's counters and the serving
	// generation; Shed reports overload behavior. Together they make
	// degraded mode observable: shed.total climbing while
	// cache.hits climbs and shed.degraded_hits_served > 0 means the
	// server is at capacity but still answering the hot set.
	Cache cacheStatus `json:"cache"`
	Shed  shedStatus  `json:"shed"`
	// Corpus reports the query service's serving snapshot and shard
	// health: shards_healthy < shards_total with
	// degraded_queries_served climbing means queries are answering
	// partial results over the survivors — time to reload a snapshot.
	Corpus corpusStatus `json:"corpus"`
	// Tiers reports the annotation degradation ladder (DESIGN §15):
	// per-tier served/degraded/disagreement counters and the CRF-tier
	// breaker snapshot. rules_degraded_served climbing with
	// breaker.state "open" means the CRF tier is tripped and the
	// gazetteer tier is carrying annotation traffic.
	Tiers tierStatus `json:"tiers"`
}

// corpusStatus is the /readyz corpus block.
type corpusStatus struct {
	Enabled bool `json:"enabled"`
	// Version is the serving snapshot version ("" when disabled).
	Version               string `json:"version,omitempty"`
	Docs                  int    `json:"docs,omitempty"`
	ShardsTotal           int    `json:"shards_total"`
	ShardsHealthy         int    `json:"shards_healthy"`
	DegradedQueriesServed int64  `json:"degraded_queries_served"`
	Reloads               int64  `json:"reloads"`
	RejectedReloads       int64  `json:"rejected_reloads"`
}

// corpusStatusNow assembles the /readyz corpus block from the serving
// state.
func (s *Server) corpusStatusNow() corpusStatus {
	st := corpusStatus{
		DegradedQueriesServed: s.degradedQueries.Load(),
		Reloads:               s.corpusReloads.Load(),
		RejectedReloads:       s.corpusRejected.Load(),
	}
	if cs := s.loadCorpus(); cs != nil {
		st.Enabled = true
		st.Version = cs.version
		st.Docs = len(cs.snap.Models)
		st.ShardsTotal = len(cs.shards)
		st.ShardsHealthy = cs.healthyShards()
	}
	return st
}

// cacheStatus is the /readyz cache block.
type cacheStatus struct {
	Enabled    bool   `json:"enabled"`
	Entries    int    `json:"entries,omitempty"`
	Hits       int64  `json:"hits"`
	Misses     int64  `json:"misses"`
	Evictions  int64  `json:"evictions"`
	Generation uint64 `json:"generation"`
}

// shedStatus is the /readyz overload block.
type shedStatus struct {
	// Total counts every 429 answered since startup.
	Total int64 `json:"total"`
	// DegradedHitsServed counts cache hits served while the limiter
	// was saturated — requests that would have shed without the cache.
	DegradedHitsServed int64 `json:"degraded_hits_served"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.cache.Stats()
	resp := readyResponse{
		Ready:             s.ready.Load(),
		Model:             s.ModelVersion(),
		Reloads:           s.reloads.Load(),
		RejectedReloads:   s.rejected.Load(),
		Reload:            s.lastReload(),
		Quarantined:       s.quarantined.Total(),
		QuarantinedByCode: s.quarantined.ByCode(),
		Cache: cacheStatus{
			Enabled:    s.cache != nil,
			Entries:    st.Entries,
			Hits:       st.Hits,
			Misses:     st.Misses,
			Evictions:  st.Evictions,
			Generation: s.Generation(),
		},
		Shed: shedStatus{
			Total:              s.shedTotal.Load(),
			DegradedHitsServed: s.degradedHits.Load(),
		},
		Corpus: s.corpusStatusNow(),
		Tiers:  s.tierStatusNow(),
	}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// admit reserves weight units of pipeline work for this request,
// shedding with 429 + Retry-After when the server is at capacity. On
// success the caller must invoke the returned release.
func (s *Server) admit(w http.ResponseWriter, weight int) (release func(), ok bool) {
	release, ok = s.limiter.TryAcquire(weight)
	if !ok {
		s.shed(w)
		return nil, false
	}
	return release, true
}

// shed answers 429 + Retry-After and counts it.
func (s *Server) shed(w http.ResponseWriter) {
	s.shedTotal.Add(1)
	resilience.ShedJSON(w, s.cfg.RetryAfter)
}

// logf logs through the configured logger (or the default one).
func (s *Server) logf(format string, args ...any) {
	l := s.cfg.Logger
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}

// writeJSON writes v with status 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONStatus writes v as indented JSON under a non-200 status.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ctxError maps a pipeline context error to the right response: 503
// with a Retry-After when the per-request deadline expired (the server
// shed the tail of the work), nothing when the client itself went away
// (no one is reading).
func (s *Server) ctxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "request deadline exceeded")
	}
}

// maxBody caps request bodies (1 MiB).
const maxBody = 1 << 20

// decode reads a JSON body with a sane size cap. Oversized bodies are
// 413, malformed ones 400, non-POST methods 405.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// annotateRequest is the /annotate payload.
type annotateRequest struct {
	Phrase string `json:"phrase"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Phrase == "" {
		httpError(w, http.StatusBadRequest, "phrase is required")
		return
	}
	if s.cache != nil {
		s.annotateCached(w, r, req.Phrase)
		return
	}
	if s.tryRouteRules(w, req.Phrase) {
		return
	}
	tk := s.brk.Acquire()
	if !tk.OK() {
		// Breaker open: skip the CRF tier entirely.
		s.serveRulesDegraded(w, req.Phrase)
		return
	}
	release, ok := s.limiter.TryAcquire(1)
	if !ok {
		// Saturated: the rules rung still answers in microseconds
		// without pipeline admission; shed only when it is absent.
		s.brk.Cancel(tk)
		if s.cfg.Rules != nil {
			s.serveRulesDegraded(w, req.Phrase)
			return
		}
		s.shed(w)
		return
	}
	defer release()
	rec, err := s.pipeline().AnnotateIngredientChecked(req.Phrase)
	s.brk.Done(tk, !isCRFFailure(err))
	if err != nil {
		// A contained pipeline panic is the CRF tier's failure, not
		// the input's: with a rules tier configured the request still
		// deserves an answer. Input poison rejects 422 from any tier.
		if isCRFFailure(err) && s.cfg.Rules != nil {
			s.serveRulesDegraded(w, req.Phrase)
			return
		}
		s.rejectPhrase(w, req.Phrase, err)
		return
	}
	s.crfServed.Add(1)
	s.maybeAudit(req.Phrase, rec)
	writeJSON(w, rec)
}

// rejectPhrase answers the 422 quarantine payload for one phrase and
// counts the rejection (shared by the cached and uncached paths, so
// the response bytes are identical either way).
func (s *Server) rejectPhrase(w http.ResponseWriter, phrase string, err error) {
	rej := quarantine.Reject(0, phrase, err)
	s.quarantined.Observe(rej.Code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":  "phrase rejected",
		"code":   string(rej.Code),
		"detail": rej.Detail,
	})
}

// errShedMiss marks a decode that could not be admitted: the limiter
// is saturated and the phrase is not cached, so the request (and any
// waiters coalesced behind it) sheds with 429.
var errShedMiss = errors.New("limiter saturated; uncached decode shed")

// flightKey scopes a coalescing key to the serving generation, so a
// reload mid-herd starts a fresh flight against the new model instead
// of handing new-generation requests an old leader's result. Flights
// key on the raw phrase (not the canonical key): identical requests —
// the thundering-herd shape — still coalesce perfectly, and sharing
// only between byte-identical phrases keeps every response, including
// error details that echo the input, byte-identical to the uncached
// server's.
func flightKey(gen uint64, phrase string) string {
	return strconv.FormatUint(gen, 10) + "\x00" + phrase
}

// annotateCached is /annotate with the heavy-tail layer in front of
// the decode: canonical-key cache lookup (hits are served with zero
// admission weight, even under a saturated limiter), then singleflight
// coalescing for misses with admission paid once, by the leader,
// inside the flight. The cached record's derived fields depend only on
// the canonical key, so the response re-echoes this request's raw
// phrase and is byte-identical to an uncached decode.
func (s *Server) annotateCached(w http.ResponseWriter, r *http.Request, phrase string) {
	st := s.state()
	key, kerr := core.CanonicalKey(phrase)
	if kerr == nil {
		if rec, ok := s.cache.Get(key, st.gen); ok {
			if s.limiter.Saturated() {
				s.degradedHits.Add(1)
			}
			rec.Phrase = phrase
			writeJSON(w, rec)
			return
		}
	}
	if s.tryRouteRules(w, phrase) {
		return
	}
	// An unkeyable phrase (kerr != nil) still flies: the decode will
	// reject it with the exact quarantine error, and concurrent
	// identical poison requests coalesce onto one rejection.
	rec, _, err := s.flights.Do(r.Context(), flightKey(st.gen, phrase), func() (core.IngredientRecord, error) {
		// Double-check inside the flight: a leader that won the race
		// against a just-finished Put (looked up before it, got the
		// flight slot after the previous leader released it) finds the
		// entry here instead of decoding again — what makes "one herd,
		// one decode" exact rather than probabilistic.
		if kerr == nil {
			if rec, ok := s.cache.Get(key, st.gen); ok {
				return rec, nil
			}
		}
		// The breaker ticket is leader-only: waiters coalesced behind
		// this flight share the outcome (and the degraded fallback)
		// without consuming half-open probe slots.
		tk := s.brk.Acquire()
		if !tk.OK() {
			return core.IngredientRecord{}, errCRFOpen
		}
		release, ok := s.limiter.TryAcquire(1)
		if !ok {
			s.brk.Cancel(tk)
			return core.IngredientRecord{}, errShedMiss
		}
		defer release()
		rec, err := st.pipe.AnnotateIngredientChecked(phrase)
		s.brk.Done(tk, !isCRFFailure(err))
		if err != nil {
			return core.IngredientRecord{}, err
		}
		if kerr == nil {
			s.cache.Put(key, st.gen, rec)
		}
		s.maybeAudit(phrase, rec)
		return rec, nil
	})
	switch {
	case err == nil:
		s.crfServed.Add(1)
		rec.Phrase = phrase
		writeJSON(w, rec)
	case errors.Is(err, errCRFOpen):
		s.serveRulesDegraded(w, phrase)
	case errors.Is(err, errShedMiss):
		// Saturated miss: the rules rung answers without pipeline
		// admission; shed only when it is absent.
		if s.cfg.Rules != nil {
			s.serveRulesDegraded(w, phrase)
			return
		}
		s.shed(w)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// a detached waiter: the client's context died while the
		// leader was decoding.
		s.ctxError(w, err)
	default:
		// A contained pipeline panic degrades to the rules tier when
		// one is configured; input poison rejects 422 from any tier.
		if isCRFFailure(err) && s.cfg.Rules != nil {
			s.serveRulesDegraded(w, phrase)
			return
		}
		s.rejectPhrase(w, phrase, err)
	}
}

// batchAnnotateRequest is the /annotate/batch payload.
type batchAnnotateRequest struct {
	Phrases []string `json:"phrases"`
}

// maxBatchPhrases caps one /annotate/batch request; corpus-scale
// clients should stream chunks of this size.
const maxBatchPhrases = 10000

// batchItem is one per-phrase result in a /annotate/batch response:
// either an annotated record or a typed rejection. Item i answers
// phrase i.
type batchItem struct {
	Status string                 `json:"status"` // "ok" or "rejected"
	Record *core.IngredientRecord `json:"record,omitempty"`
	Code   quarantine.Code        `json:"code,omitempty"`
	Detail string                 `json:"detail,omitempty"`
	// Tier marks a record served by a fallback tier ("rules"); absent
	// on CRF-tier and cache-hit records, so healthy envelopes are
	// byte-identical to the pre-tier server's.
	Tier string `json:"tier,omitempty"`
}

// batchResponse is the /annotate/batch payload: per-item statuses plus
// roll-up counts. The HTTP status follows the 207 Multi-Status idea:
// 200 when every phrase annotated, 207 on a mix, 422 when every phrase
// was rejected.
type batchResponse struct {
	Results  []batchItem `json:"results"`
	OK       int         `json:"ok"`
	Rejected int         `json:"rejected"`
	// Degraded/Tier mark an envelope with at least one slot answered
	// by a fallback tier (DESIGN §15); omitted on healthy responses.
	Degraded bool   `json:"degraded,omitempty"`
	Tier     string `json:"tier,omitempty"`
}

func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	var req batchAnnotateRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Phrases) == 0 {
		httpError(w, http.StatusBadRequest, "phrases are required")
		return
	}
	if len(req.Phrases) > maxBatchPhrases {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("at most %d phrases per batch", maxBatchPhrases))
		return
	}
	if s.cache != nil {
		s.annotateBatchCached(w, r, req.Phrases)
		return
	}
	n := len(req.Phrases)
	tk := s.brk.Acquire()
	if !tk.OK() {
		// Breaker open: the whole batch resolves on the rules tier.
		s.finishBatchRules(w, req.Phrases, make([]core.IngredientRecord, n), make([]bool, n), nil)
		return
	}
	// a batch occupies as many admission units as it has phrases, so
	// one giant batch can't starve the interactive endpoints silently.
	release, ok := s.limiter.TryAcquire(n)
	if !ok {
		s.brk.Cancel(tk)
		if s.cfg.Rules != nil {
			s.finishBatchRules(w, req.Phrases, make([]core.IngredientRecord, n), make([]bool, n), nil)
			return
		}
		s.shed(w)
		return
	}
	defer release()
	recs, rejs, err := s.pipeline().AnnotateIngredientsPartial(r.Context(), req.Phrases)
	if err != nil {
		s.brk.Cancel(tk)
		s.ctxError(w, err)
		return
	}
	crfOK := batchCRFSuccess(rejs)
	s.brk.Done(tk, crfOK)
	if !crfOK && s.cfg.Rules != nil {
		// Contained pipeline panics are the CRF tier's failure: those
		// slots re-serve on the rules tier; input poison stands as 422.
		done := make([]bool, n)
		for i := range done {
			done[i] = true
		}
		s.finishBatchRules(w, req.Phrases, recs, done, splitCRFFailures(rejs, done))
		return
	}
	writeBatch(w, n, recs, rejs, &s.quarantined)
}

// writeBatch assembles and writes the /annotate/batch envelope from
// per-slot records and rejections (slot i is a rejection iff some
// rejection carries index i), counting rejections into quarantined.
// Shared by the cached and uncached paths so the bytes are identical.
func writeBatch(w http.ResponseWriter, n int, recs []core.IngredientRecord, rejs []quarantine.Rejection, quarantined *quarantine.Counters) {
	writeBatchTier(w, n, recs, rejs, quarantined, nil, false, "")
}

// writeBatchTier is writeBatch with the degradation markers: tiers[i]
// (when non-nil) labels slot i's serving tier ("" for CRF/cache slots,
// omitted from JSON), and degraded/tier stamp the envelope. The healthy
// path passes nil/false/"" and produces bytes identical to the
// pre-tier envelope via omitempty.
func writeBatchTier(w http.ResponseWriter, n int, recs []core.IngredientRecord, rejs []quarantine.Rejection, quarantined *quarantine.Counters, tiers []string, degraded bool, tier string) {
	resp := batchResponse{Results: make([]batchItem, n), Degraded: degraded, Tier: tier}
	for i := range resp.Results {
		rec := recs[i]
		item := batchItem{Status: "ok", Record: &rec}
		if tiers != nil {
			item.Tier = tiers[i]
		}
		resp.Results[i] = item
	}
	for _, rej := range rejs {
		quarantined.Observe(rej.Code)
		resp.Results[rej.Index] = batchItem{Status: "rejected", Code: rej.Code, Detail: rej.Detail}
	}
	resp.Rejected = len(rejs)
	resp.OK = n - resp.Rejected
	status := http.StatusOK
	switch {
	case resp.OK == 0:
		status = http.StatusUnprocessableEntity
	case resp.Rejected > 0:
		status = http.StatusMultiStatus
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// annotateBatchCached is /annotate/batch with the heavy-tail layer:
// cached phrases are served for free, the remaining distinct phrases
// are deduplicated (a 10k-phrase batch of "salt" decodes once) and
// decoded through the worker-pool partial API, and admission is
// weighed by the deduplicated miss count only — so under overload an
// all-hot batch still answers while a cold batch sheds. Dedup is by
// raw phrase: derived record fields depend only on the canonical key,
// but rejection details echo the input, and byte-identity with the
// uncached server is the differential contract.
func (s *Server) annotateBatchCached(w http.ResponseWriter, r *http.Request, phrases []string) {
	st := s.state()
	n := len(phrases)
	recs := make([]core.IngredientRecord, n)
	done := make([]bool, n)
	keys := make([]string, n)
	keyOK := make([]bool, n)
	hits := 0
	for i, p := range phrases {
		key, kerr := core.CanonicalKey(p)
		if kerr != nil {
			continue // decodes (and rejects) below
		}
		keys[i], keyOK[i] = key, true
		if rec, ok := s.cache.Get(key, st.gen); ok {
			rec.Phrase = p
			recs[i] = rec
			done[i] = true
			hits++
		}
	}
	// Saturation is sampled at arrival: a batch's own miss admission
	// must not make its hits look degraded. The counter moves only
	// when the batch is actually served (below) — hits in a batch that
	// sheds on its miss weight were never answered.
	degraded := hits > 0 && s.limiter.Saturated()
	var rejs []quarantine.Rejection
	missIdx := make(map[string]int) // raw phrase → index into miss slices
	var missPhrases []string
	var missKeys []string
	var missKeyOK []bool
	for i, p := range phrases {
		if done[i] {
			continue
		}
		if _, seen := missIdx[p]; seen {
			continue
		}
		missIdx[p] = len(missPhrases)
		missPhrases = append(missPhrases, p)
		missKeys = append(missKeys, keys[i])
		missKeyOK = append(missKeyOK, keyOK[i])
	}
	fellBack := false
	if len(missPhrases) > 0 {
		tk := s.brk.Acquire()
		if !tk.OK() {
			// Breaker open: cache hits stand, every other slot resolves
			// on the rules tier.
			s.finishBatchRules(w, phrases, recs, done, nil)
			return
		}
		release, ok := s.limiter.TryAcquire(len(missPhrases))
		if !ok {
			s.brk.Cancel(tk)
			if s.cfg.Rules != nil {
				if hits > 0 {
					s.degradedHits.Add(int64(hits))
				}
				s.finishBatchRules(w, phrases, recs, done, nil)
				return
			}
			s.shed(w)
			return
		}
		defer release()
		mrecs, mrejs, err := st.pipe.AnnotateIngredientsPartial(r.Context(), missPhrases)
		if err != nil {
			s.brk.Cancel(tk)
			s.ctxError(w, err)
			return
		}
		crfOK := batchCRFSuccess(mrejs)
		s.brk.Done(tk, crfOK)
		rulesRetry := !crfOK && s.cfg.Rules != nil
		rejected := make(map[int]quarantine.Rejection, len(mrejs))
		for _, rej := range mrejs {
			rejected[rej.Index] = rej
		}
		for j := range missPhrases {
			if _, bad := rejected[j]; !bad && missKeyOK[j] {
				s.cache.Put(missKeys[j], st.gen, mrecs[j])
			}
		}
		// Expand the deduplicated results back onto every slot. A
		// duplicate of a rejected phrase rejects at every slot it
		// occupies, exactly as the uncached per-slot decode would.
		for i, p := range phrases {
			if done[i] {
				continue
			}
			j := missIdx[p]
			if rej, bad := rejected[j]; bad {
				if rulesRetry && isPanicCode(rej.Code) {
					// The CRF tier panicked on this phrase: leave the
					// slot undone for the rules tier below.
					fellBack = true
					continue
				}
				rej.Index = i
				rejs = append(rejs, rej)
				continue
			}
			rec := mrecs[j]
			rec.Phrase = p
			recs[i] = rec
			done[i] = true
		}
	}
	if degraded {
		s.degradedHits.Add(int64(hits))
	}
	if fellBack {
		s.finishBatchRules(w, phrases, recs, done, rejs)
		return
	}
	writeBatch(w, n, recs, rejs, &s.quarantined)
}

// modelRequest is the /model payload.
type modelRequest struct {
	Title        string   `json:"title"`
	Cuisine      string   `json:"cuisine"`
	Ingredients  []string `json:"ingredients"`
	Instructions string   `json:"instructions"`
}

// modelResponse wraps the mined model with its nutrition estimate.
type modelResponse struct {
	Model     *core.RecipeModel `json:"model"`
	Nutrition nutrition.Profile `json:"nutrition"`
	Resolved  int               `json:"resolvedIngredients"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req modelRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Ingredients) == 0 {
		httpError(w, http.StatusBadRequest, "ingredients are required")
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	m, err := s.pipeline().ModelRecipeContext(r.Context(), req.Title, req.Cuisine, req.Ingredients, req.Instructions)
	if err != nil {
		s.ctxError(w, err)
		return
	}
	profile, resolved := s.estimator.EstimateRecipe(m)
	writeJSON(w, modelResponse{Model: m, Nutrition: profile, Resolved: resolved})
}

// searchRequest mirrors index.Query with JSON tags.
type searchRequest struct {
	Ingredients []string `json:"ingredients"`
	Processes   []string `json:"processes"`
	Utensils    []string `json:"utensils"`
	Cuisine     string   `json:"cuisine"`
}

// searchHit is one /search result row.
type searchHit struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Cuisine string `json:"cuisine"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.ix == nil {
		httpError(w, http.StatusServiceUnavailable, "no corpus indexed")
		return
	}
	var req searchRequest
	if !decode(w, r, &req) {
		return
	}
	release, ok := s.admit(w, 1)
	if !ok {
		return
	}
	defer release()
	hits := s.ix.Search(index.Query{
		Ingredients: req.Ingredients,
		Processes:   req.Processes,
		Utensils:    req.Utensils,
		Cuisine:     req.Cuisine,
	})
	out := make([]searchHit, 0, len(hits))
	for _, id := range hits {
		m := s.ix.Model(id)
		out = append(out, searchHit{ID: id, Title: m.Title, Cuisine: m.Cuisine})
	}
	writeJSON(w, out)
}
