package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/index"
	"recipemodel/internal/ner"
	"recipemodel/internal/relations"
)

// fakePipe is a deterministic Pipeline stub so server tests don't pay
// training cost; the real pipeline is covered by the integration test
// in cmd/recipeserver.
type fakePipe struct{}

func (fakePipe) AnnotateIngredient(phrase string) core.IngredientRecord {
	return core.IngredientRecord{Phrase: phrase, Name: "onion", Quantity: "2", Unit: "cups"}
}

func (f fakePipe) AnnotateIngredients(phrases []string) []core.IngredientRecord {
	out := make([]core.IngredientRecord, len(phrases))
	for i, p := range phrases {
		out[i] = f.AnnotateIngredient(p)
	}
	return out
}

func (fakePipe) ModelRecipe(title, cuisine string, ingredientLines []string, instructions string) *core.RecipeModel {
	m := &core.RecipeModel{Title: title, Cuisine: cuisine}
	for _, l := range ingredientLines {
		m.Ingredients = append(m.Ingredients, core.IngredientRecord{Phrase: l, Name: "sugar", Quantity: "100", Unit: "grams"})
	}
	m.Events = []core.Event{{Step: 0, Relation: relations.Relation{Process: "mix"}}}
	return m
}

func testIndex() *index.Index {
	return index.New([]*core.RecipeModel{
		{Title: "Chicken Soup", Cuisine: "American",
			Ingredients: []core.IngredientRecord{{Name: "chicken"}},
			Events:      []core.Event{{Relation: relations.Relation{Process: "boil"}}}},
		{Title: "Pasta", Cuisine: "Italian",
			Ingredients: []core.IngredientRecord{{Name: "pasta"}},
			Events:      []core.Event{{Relation: relations.Relation{Process: "boil"}}}},
	})
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealth(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodGet, "/healthz", "")
	if w.Code != 200 {
		t.Fatalf("health = %d", w.Code)
	}
}

func TestAnnotate(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"2 cups onion"}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var rec core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "onion" || rec.Quantity != "2" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestAnnotateValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodGet, "/annotate", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty phrase = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad type = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"unknown":"x"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", w.Code)
	}
}

func TestAnnotateBatch(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate/batch",
		`{"phrases":["2 cups onion","1 tsp salt","3 eggs"]}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var recs []core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	// order must follow the request, not completion order.
	for i, phrase := range []string{"2 cups onion", "1 tsp salt", "3 eggs"} {
		if recs[i].Phrase != phrase {
			t.Fatalf("record %d is for %q, want %q", i, recs[i].Phrase, phrase)
		}
	}
}

func TestAnnotateBatchValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/annotate/batch", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", w.Code)
	}
	big, err := json.Marshal(map[string][]string{"phrases": make([]string, maxBatchPhrases+1)})
	if err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(big)); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d", w.Code)
	}
}

func TestModel(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/model",
		`{"title":"Cake","ingredients":["100 grams sugar"],"instructions":"Mix."}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var resp struct {
		Model struct {
			Title string `json:"Title"`
		} `json:"model"`
		Nutrition struct {
			Calories float64 `json:"Calories"`
		} `json:"nutrition"`
		Resolved int `json:"resolvedIngredients"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model.Title != "Cake" || resp.Resolved != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Nutrition.Calories < 380 || resp.Nutrition.Calories > 390 {
		t.Fatalf("calories = %v", resp.Nutrition.Calories)
	}
}

func TestModelValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/model", `{"title":"x"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("no ingredients = %d", w.Code)
	}
}

func TestSearch(t *testing.T) {
	s := New(fakePipe{}, testIndex())
	w := do(t, s, http.MethodPost, "/search", `{"processes":["boil"],"cuisine":"Italian"}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var hits []struct {
		Title string `json:"title"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Title != "Pasta" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchWithoutIndex(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/search", `{}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("no index = %d", w.Code)
	}
}

// entity span types survive the JSON round trip.
func TestModelJSONIncludesEvents(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/model",
		`{"ingredients":["x"],"instructions":"Mix."}`)
	if !strings.Contains(w.Body.String(), `"Process": "mix"`) {
		t.Fatalf("events missing:\n%s", w.Body.String())
	}
	_ = ner.Span{} // document the shared span type
}
