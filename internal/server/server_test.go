package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/index"
	"recipemodel/internal/ner"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/relations"
)

// fakePipe is a deterministic Pipeline stub so server tests don't pay
// training cost; the real pipeline is covered by the integration test
// in cmd/recipeserver. A non-nil gate makes every annotation block
// until the channel closes — the deterministic "slow request" used by
// the shedding and deadline tests.
type fakePipe struct {
	gate chan struct{}
	// entered, when non-nil, receives one (non-blocking) signal each
	// time a gated annotation reaches the pipe — i.e. after the
	// limiter admitted the request. Tests wait on it instead of
	// sleep-polling the in-flight gauge.
	entered chan struct{}
}

func (f fakePipe) wait(ctx context.Context) error {
	if f.gate == nil {
		return nil
	}
	if f.entered != nil {
		select {
		case f.entered <- struct{}{}:
		default:
		}
	}
	select {
	case <-f.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f fakePipe) AnnotateIngredient(phrase string) core.IngredientRecord {
	_ = f.wait(context.Background())
	return core.IngredientRecord{Phrase: phrase, Name: "onion", Quantity: "2", Unit: "cups"}
}

// poison classifies the stub's rejection behavior: whitespace-only
// phrases reject as empty_after_clean, a "panic:" prefix as a contained
// tagger panic — enough taxonomy to exercise both handler paths.
func poison(phrase string) error {
	switch {
	case strings.TrimSpace(phrase) == "":
		return quarantine.ErrEmptyAfterClean
	case strings.HasPrefix(phrase, "panic:"):
		return quarantine.ErrTaggerPanic
	}
	return nil
}

func (f fakePipe) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	_ = f.wait(context.Background())
	if err := poison(phrase); err != nil {
		return core.IngredientRecord{Phrase: phrase}, err
	}
	return core.IngredientRecord{Phrase: phrase, Name: "onion", Quantity: "2", Unit: "cups"}, nil
}

func (f fakePipe) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	out := make([]core.IngredientRecord, len(phrases))
	for i, p := range phrases {
		out[i] = core.IngredientRecord{Phrase: p, Name: "onion", Quantity: "2", Unit: "cups"}
	}
	return out, ctx.Err()
}

func (f fakePipe) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	if err := f.wait(ctx); err != nil {
		return nil, nil, err
	}
	out := make([]core.IngredientRecord, len(phrases))
	var rejs []quarantine.Rejection
	for i, p := range phrases {
		if err := poison(p); err != nil {
			rejs = append(rejs, quarantine.Reject(i, p, err))
			continue
		}
		out[i] = core.IngredientRecord{Phrase: p, Name: "onion", Quantity: "2", Unit: "cups"}
	}
	return out, rejs, ctx.Err()
}

func (f fakePipe) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	m := &core.RecipeModel{Title: title, Cuisine: cuisine}
	for _, l := range ingredientLines {
		m.Ingredients = append(m.Ingredients, core.IngredientRecord{Phrase: l, Name: "sugar", Quantity: "100", Unit: "grams"})
	}
	m.Events = []core.Event{{Step: 0, Relation: relations.Relation{Process: "mix"}}}
	return m, ctx.Err()
}

func testIndex() *index.Index {
	return index.New([]*core.RecipeModel{
		{Title: "Chicken Soup", Cuisine: "American",
			Ingredients: []core.IngredientRecord{{Name: "chicken"}},
			Events:      []core.Event{{Relation: relations.Relation{Process: "boil"}}}},
		{Title: "Pasta", Cuisine: "Italian",
			Ingredients: []core.IngredientRecord{{Name: "pasta"}},
			Events:      []core.Event{{Relation: relations.Relation{Process: "boil"}}}},
	})
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHealth(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodGet, "/healthz", "")
	if w.Code != 200 {
		t.Fatalf("health = %d", w.Code)
	}
}

// liveness is GET-only: probes must not mutate, and typos like POST
// /healthz should be loud.
func TestHealthMethodNotAllowed(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d", w.Code)
	}
}

// readiness starts false (training in progress), flips with SetReady,
// and is also GET-only.
func TestReadyz(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d", w.Code)
	}
	s.SetReady(true)
	if !s.Ready() {
		t.Fatal("Ready() = false after SetReady(true)")
	}
	if w := do(t, s, http.MethodGet, "/readyz", ""); w.Code != 200 {
		t.Fatalf("readyz after SetReady = %d", w.Code)
	}
	s.SetReady(false)
	if w := do(t, s, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after SetReady(false) = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/readyz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /readyz = %d", w.Code)
	}
}

func TestAnnotate(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"2 cups onion"}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var rec core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "onion" || rec.Quantity != "2" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestAnnotateValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodGet, "/annotate", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty phrase = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad type = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"unknown":"x"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":`); w.Code != http.StatusBadRequest {
		t.Fatalf("truncated JSON = %d", w.Code)
	}
}

// an over-cap body must be 413, not a generic 400.
func TestOversizedBodyIs413(t *testing.T) {
	s := New(fakePipe{}, nil)
	big := `{"phrase":"` + strings.Repeat("a", maxBody+1) + `"}`
	w := do(t, s, http.MethodPost, "/annotate", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", w.Code)
	}
	if !strings.Contains(w.Body.String(), "exceeds") {
		t.Fatalf("body = %s", w.Body.String())
	}
}

// decodeBatch parses a /annotate/batch response envelope.
func decodeBatch(t *testing.T, w *httptest.ResponseRecorder) batchResponse {
	t.Helper()
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode batch response: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestAnnotateBatch(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate/batch",
		`{"phrases":["2 cups onion","1 tsp salt","3 eggs"]}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	resp := decodeBatch(t, w)
	if len(resp.Results) != 3 || resp.OK != 3 || resp.Rejected != 0 {
		t.Fatalf("resp = ok %d rejected %d results %d", resp.OK, resp.Rejected, len(resp.Results))
	}
	// order must follow the request, not completion order.
	for i, phrase := range []string{"2 cups onion", "1 tsp salt", "3 eggs"} {
		item := resp.Results[i]
		if item.Status != "ok" || item.Record == nil || item.Record.Phrase != phrase {
			t.Fatalf("item %d = %+v, want ok record for %q", i, item, phrase)
		}
	}
}

// TestAnnotateBatchMixed: one poison phrase in a batch costs exactly
// that item — the response is 207 with per-item statuses, the good
// records are present and in request order, and the server keeps
// serving afterwards.
func TestAnnotateBatchMixed(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate/batch",
		`{"phrases":["2 cups onion","   ","panic: wedge","3 eggs"]}`)
	if w.Code != http.StatusMultiStatus {
		t.Fatalf("mixed batch = %d, want 207\n%s", w.Code, w.Body.String())
	}
	resp := decodeBatch(t, w)
	if resp.OK != 2 || resp.Rejected != 2 || len(resp.Results) != 4 {
		t.Fatalf("resp = ok %d rejected %d results %d", resp.OK, resp.Rejected, len(resp.Results))
	}
	if resp.Results[0].Status != "ok" || resp.Results[0].Record.Phrase != "2 cups onion" {
		t.Fatalf("item 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Status != "rejected" || resp.Results[1].Code != quarantine.CodeEmptyAfterClean {
		t.Fatalf("item 1 = %+v, want rejected empty_after_clean", resp.Results[1])
	}
	if resp.Results[2].Status != "rejected" || resp.Results[2].Code != quarantine.CodeTaggerPanic {
		t.Fatalf("item 2 = %+v, want rejected tagger_panic", resp.Results[2])
	}
	if resp.Results[3].Status != "ok" || resp.Results[3].Record.Phrase != "3 eggs" {
		t.Fatalf("item 3 = %+v", resp.Results[3])
	}
	// rejected items must not carry a record, ok items no code.
	if resp.Results[1].Record != nil || resp.Results[0].Code != "" {
		t.Fatalf("cross-contaminated items: %+v / %+v", resp.Results[0], resp.Results[1])
	}
	// the server survived the poison batch.
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"x"}`); w.Code != 200 {
		t.Fatalf("request after poison batch = %d, want 200", w.Code)
	}
}

// TestAnnotateBatchAllRejected: a batch with no annotatable phrase is a
// 422, still with per-item detail.
func TestAnnotateBatchAllRejected(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":["   ","panic: x"]}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("all-rejected batch = %d, want 422\n%s", w.Code, w.Body.String())
	}
	resp := decodeBatch(t, w)
	if resp.OK != 0 || resp.Rejected != 2 {
		t.Fatalf("resp = ok %d rejected %d", resp.OK, resp.Rejected)
	}
}

// TestAnnotateRejected422: the single-phrase endpoint answers a typed
// 422 for a poison phrase.
func TestAnnotateRejected422(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"   "}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("poison phrase = %d, want 422\n%s", w.Code, w.Body.String())
	}
	var resp map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["code"] != string(quarantine.CodeEmptyAfterClean) {
		t.Fatalf("code = %q, want empty_after_clean", resp["code"])
	}
}

// TestReadyzQuarantineCounters: rejections served by the annotate
// endpoints surface on /readyz, cumulative and by code.
func TestReadyzQuarantineCounters(t *testing.T) {
	s := New(fakePipe{}, nil)
	s.SetReady(true)
	do(t, s, http.MethodPost, "/annotate", `{"phrase":"   "}`)
	do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":["ok phrase","panic: wedge","   "]}`)
	w := do(t, s, http.MethodGet, "/readyz", "")
	if w.Code != 200 {
		t.Fatalf("readyz = %d", w.Code)
	}
	var resp struct {
		Quarantined       int64            `json:"quarantined"`
		QuarantinedByCode map[string]int64 `json:"quarantinedByCode"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3\n%s", resp.Quarantined, w.Body.String())
	}
	if resp.QuarantinedByCode["empty_after_clean"] != 2 || resp.QuarantinedByCode["tagger_panic"] != 1 {
		t.Fatalf("byCode = %v", resp.QuarantinedByCode)
	}
}

func TestAnnotateBatchValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/annotate/batch", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET = %d", w.Code)
	}
	big, err := json.Marshal(map[string][]string{"phrases": make([]string, maxBatchPhrases+1)})
	if err != nil {
		t.Fatal(err)
	}
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(big)); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d", w.Code)
	}
}

func TestModel(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/model",
		`{"title":"Cake","ingredients":["100 grams sugar"],"instructions":"Mix."}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var resp struct {
		Model struct {
			Title string `json:"Title"`
		} `json:"model"`
		Nutrition struct {
			Calories float64 `json:"Calories"`
		} `json:"nutrition"`
		Resolved int `json:"resolvedIngredients"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model.Title != "Cake" || resp.Resolved != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Nutrition.Calories < 380 || resp.Nutrition.Calories > 390 {
		t.Fatalf("calories = %v", resp.Nutrition.Calories)
	}
}

func TestModelValidation(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/model", `{"title":"x"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("no ingredients = %d", w.Code)
	}
	if w := do(t, s, http.MethodDelete, "/model", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE = %d", w.Code)
	}
}

func TestSearch(t *testing.T) {
	s := New(fakePipe{}, testIndex())
	w := do(t, s, http.MethodPost, "/search", `{"processes":["boil"],"cuisine":"Italian"}`)
	if w.Code != 200 {
		t.Fatalf("code = %d body = %s", w.Code, w.Body.String())
	}
	var hits []struct {
		Title string `json:"title"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Title != "Pasta" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchWithoutIndex(t *testing.T) {
	s := New(fakePipe{}, nil)
	if w := do(t, s, http.MethodPost, "/search", `{}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("no index = %d", w.Code)
	}
}

// entity span types survive the JSON round trip.
func TestModelJSONIncludesEvents(t *testing.T) {
	s := New(fakePipe{}, nil)
	w := do(t, s, http.MethodPost, "/model",
		`{"ingredients":["x"],"instructions":"Mix."}`)
	if !strings.Contains(w.Body.String(), `"Process": "mix"`) {
		t.Fatalf("events missing:\n%s", w.Body.String())
	}
	_ = ner.Span{} // document the shared span type
}

// TestPanicContained: an injected handler panic must come back as a
// 500 with a stack in the log, and the server must keep serving.
func TestPanicContained(t *testing.T) {
	var logBuf bytes.Buffer
	s := NewWithConfig(fakePipe{}, nil, Config{Logger: log.New(&logBuf, "", 0)})
	defer faults.Enable(FaultServe, faults.Fault{PanicMsg: "wedged handler", Limit: 1})()
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"x"}`); w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", w.Code)
	}
	if !strings.Contains(logBuf.String(), "wedged handler") || !strings.Contains(logBuf.String(), "goroutine") {
		t.Fatalf("log missing panic + stack:\n%s", logBuf.String())
	}
	// the process survived; the next request is normal.
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"x"}`); w.Code != 200 {
		t.Fatalf("request after panic = %d, want 200", w.Code)
	}
}

// TestSheddingAt429: with an in-flight cap of 1, a request held open
// by the gate makes a concurrent request shed with 429 + Retry-After;
// after the gate opens everything is admitted again.
func TestSheddingAt429(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	s := NewWithConfig(fakePipe{gate: gate, entered: entered}, nil, Config{MaxInFlight: 1, RetryAfter: 2 * time.Second})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- do(t, s, http.MethodPost, "/annotate", `{"phrase":"slow"}`)
	}()
	// the pipe signals entered only after the limiter admitted the
	// request, so the in-flight slot is provably occupied here.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the pipe")
	}
	if s.limiter.InFlight() != 1 {
		t.Fatal("first request never reached the limiter")
	}

	w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"shed me"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("concurrent request = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", w.Header().Get("Retry-After"))
	}

	close(gate)
	if first := <-firstDone; first.Code != 200 {
		t.Fatalf("gated request = %d, want 200", first.Code)
	}
	if w := do(t, s, http.MethodPost, "/annotate", `{"phrase":"x"}`); w.Code != 200 {
		t.Fatalf("request after release = %d, want 200", w.Code)
	}
}

// TestBatchWeightedAdmission: a batch occupies one unit per phrase, so
// a 3-phrase batch in flight under a cap of 4 sheds the next 3-phrase
// batch but still admits a single annotate.
func TestBatchWeightedAdmission(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	s := NewWithConfig(fakePipe{gate: gate, entered: entered}, nil, Config{MaxInFlight: 4})

	bigDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		bigDone <- do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":["a","b","c"]}`)
	}()
	// one batch = one pipe call; its entered signal fires after the
	// limiter charged the full 3-phrase weight.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("batch never reached the pipe")
	}
	if s.limiter.InFlight() != 3 {
		t.Fatalf("inflight = %d, want 3 (batch weight)", s.limiter.InFlight())
	}

	if w := do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":["d","e","f"]}`); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second batch = %d, want 429", w.Code)
	}

	// a single annotate still fits in the remaining unit — but it would
	// block on the gate; just verify admission, using a fresh unblocked
	// pipe through the same limiter is not possible, so assert capacity
	// arithmetic directly instead.
	if rel, ok := s.limiter.TryAcquire(1); !ok {
		t.Fatal("one remaining unit must admit a single request")
	} else {
		rel()
	}

	close(gate)
	if big := <-bigDone; big.Code != 200 {
		t.Fatalf("gated batch = %d, want 200", big.Code)
	}
}

// TestRequestDeadline503: a request that overruns its per-request
// deadline answers 503 with a Retry-After instead of hanging.
func TestRequestDeadline503(t *testing.T) {
	gate := make(chan struct{}) // never closed: the pipe blocks until ctx expires
	defer close(gate)
	s := NewWithConfig(fakePipe{gate: gate}, nil, Config{RequestTimeout: 20 * time.Millisecond})
	w := do(t, s, http.MethodPost, "/annotate/batch", `{"phrases":["x"]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline overrun = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
}

// TestInjectedServeError: the server-level fault point maps injected
// errors to 500 (used by ops drills to rehearse alerting).
func TestInjectedServeError(t *testing.T) {
	s := New(fakePipe{}, nil)
	defer faults.Enable(FaultServe, faults.Fault{Err: context.DeadlineExceeded, Limit: 1})()
	if w := do(t, s, http.MethodGet, "/healthz", ""); w.Code != http.StatusInternalServerError {
		t.Fatalf("injected error = %d, want 500", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/healthz", ""); w.Code != 200 {
		t.Fatalf("after fault window = %d, want 200", w.Code)
	}
}
