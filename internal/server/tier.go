// The tiered annotation ladder (DESIGN §15). Annotation requests
// resolve through four rungs, cheapest-healthy first:
//
//	CRF tier  →  cache hot-set  →  rules tier  →  shed
//
// A circuit breaker (internal/breaker) watches CRF-tier health:
// contained per-record panics, canary-rejected reloads, and query
// shard budget overruns feed its sliding failure window. While the
// breaker is closed the CRF tier serves as before (optionally
// short-circuiting high-confidence phrases to the rules tier behind
// Config.RulesRoute); when it trips, annotation endpoints degrade to
// the deterministic gazetteer tier — 200 with degraded:true and
// tier:"rules" instead of a 429 or 500 — and half-open probes restore
// the CRF tier automatically once decodes succeed again. Input-poison
// rejections (bad UTF-8, caps, empty-after-clean) are the input's
// fault, not the tier's: they answer 422 from either tier, never feed
// the breaker, and are byte-identical between tiers by construction
// (both run core.Sanitize under the same policy).
//
// Everything here is opt-in: with Config.Rules nil the breaker is nil
// (always admits, never trips) and every annotation response is
// byte-identical to the pre-tier server — the differential contract
// TestTierDifferential pins.
package server

import (
	"errors"
	"net/http"

	"recipemodel/internal/breaker"
	"recipemodel/internal/core"
	"recipemodel/internal/quarantine"
)

// RulesAnnotator is the fallback-tier contract (satisfied by
// rules.Tagger): annotate one raw phrase without the CRF model,
// returning the record, a confidence in [0, 1], and the same typed
// quarantine rejections as the CRF path for poison input.
type RulesAnnotator interface {
	Annotate(phrase string) (core.IngredientRecord, float64, error)
}

// errCRFOpen marks a decode denied by the open breaker: the request
// (and any waiters coalesced behind it) must fall through to the
// rules tier.
var errCRFOpen = errors.New("crf tier circuit open")

// tierRecord is the degraded /annotate payload: the rules-tier record
// with the degradation markers appended, so clients that only read
// the record fields parse both shapes identically.
type tierRecord struct {
	core.IngredientRecord
	Degraded bool   `json:"degraded"`
	Tier     string `json:"tier"`
}

// isCRFFailure classifies a decode error as a CRF-tier failure (a
// contained pipeline panic) as opposed to input poison. Only tier
// failures feed the breaker window.
func isCRFFailure(err error) bool {
	return errors.Is(err, quarantine.ErrTaggerPanic) || errors.Is(err, quarantine.ErrParserPanic)
}

// isPanicCode is isCRFFailure on the rejection-code form.
func isPanicCode(code quarantine.Code) bool {
	return code == quarantine.CodeTaggerPanic || code == quarantine.CodeParserPanic
}

// batchCRFSuccess folds a batch decode's rejections into one breaker
// outcome: the batch counts as a tier failure iff any record hit a
// contained pipeline panic.
func batchCRFSuccess(rejs []quarantine.Rejection) bool {
	for _, rej := range rejs {
		if isPanicCode(rej.Code) {
			return false
		}
	}
	return true
}

// splitCRFFailures filters a batch's rejections: panic-class slots are
// marked undone (so the rules tier re-serves them) and dropped from
// the rejection list; input-poison rejections stand. Filters in place.
func splitCRFFailures(rejs []quarantine.Rejection, done []bool) []quarantine.Rejection {
	kept := rejs[:0]
	for _, rej := range rejs {
		if isPanicCode(rej.Code) {
			done[rej.Index] = false
			continue
		}
		kept = append(kept, rej)
	}
	return kept
}

// tryRouteRules is the healthy-mode short circuit: with routing
// enabled and the breaker closed, a phrase the rules tier annotates
// at or above Config.RulesThreshold confidence is answered from the
// rules tier without touching the CRF pipeline (counted, plain
// envelope — routing trades byte-identity for decode cost, which is
// why it ships off by default). Reports whether the response was
// written.
func (s *Server) tryRouteRules(w http.ResponseWriter, phrase string) bool {
	if s.cfg.Rules == nil || !s.cfg.RulesRoute || s.brk.State() != breaker.StateClosed {
		return false
	}
	rec, conf, err := s.cfg.Rules.Annotate(phrase)
	if err != nil || conf < s.cfg.RulesThreshold {
		return false
	}
	rec.Phrase = phrase
	s.rulesRouted.Add(1)
	writeJSON(w, rec)
	return true
}

// serveRulesDegraded answers one phrase from the rules tier with the
// degradation markers — the third ladder rung. Poison input still
// rejects 422 (identically to the CRF tier); with no rules tier
// configured the request sheds.
func (s *Server) serveRulesDegraded(w http.ResponseWriter, phrase string) {
	if s.cfg.Rules == nil {
		s.shed(w)
		return
	}
	rec, _, err := s.cfg.Rules.Annotate(phrase)
	if err != nil {
		s.rejectPhrase(w, phrase, err)
		return
	}
	rec.Phrase = phrase
	s.rulesDegraded.Add(1)
	writeJSON(w, tierRecord{IngredientRecord: rec, Degraded: true, Tier: "rules"})
}

// finishBatchRules resolves every unfinished slot of a batch through
// the rules tier and writes the degraded envelope. Slots already
// served from the cache keep their records — "every annotate request
// answers 200 tier:rules or a cache hit" is exactly this function.
func (s *Server) finishBatchRules(w http.ResponseWriter, phrases []string, recs []core.IngredientRecord, done []bool, rejs []quarantine.Rejection) {
	if s.cfg.Rules == nil {
		s.shed(w)
		return
	}
	tiers := make([]string, len(phrases))
	for i, p := range phrases {
		if done[i] {
			continue
		}
		rec, _, err := s.cfg.Rules.Annotate(p)
		if err != nil {
			rejs = append(rejs, quarantine.Reject(i, p, err))
			continue
		}
		rec.Phrase = p
		recs[i] = rec
		tiers[i] = "rules"
		s.rulesDegraded.Add(1)
	}
	writeBatchTier(w, len(phrases), recs, rejs, &s.quarantined, tiers, true, "rules")
}

// maybeAudit runs the sampled cross-tier agreement check: every
// Config.AgreementSample-th successful CRF decode is re-annotated by
// the rules tier and compared field for field (when the rules tier is
// confident enough to have an opinion). Disagreements are counted on
// /readyz and logged with the phrase truncated — a drifting
// disagreement rate flags either a degrading model or
// quarantine-suspect input reaching the decode path. The sample
// counter is deterministic (every Nth), not randomized, in keeping
// with the repo's no-wall-clock, no-global-rand serving discipline.
func (s *Server) maybeAudit(phrase string, rec core.IngredientRecord) {
	n := s.cfg.AgreementSample
	if n <= 0 || s.cfg.Rules == nil {
		return
	}
	if s.auditTick.Add(1)%uint64(n) != 0 {
		return
	}
	rrec, conf, err := s.cfg.Rules.Annotate(phrase)
	if err != nil || conf < s.cfg.RulesThreshold {
		return // the rules tier has no confident opinion; no signal
	}
	s.auditSampled.Add(1)
	rrec.Phrase = rec.Phrase
	if rrec != rec {
		s.auditDisagree.Add(1)
		s.logf("tier disagreement (quarantine-suspect input?) on %q: crf name=%q qty=%q unit=%q state=%q; rules name=%q qty=%q unit=%q state=%q",
			quarantine.Truncate(phrase),
			rec.Name, rec.Quantity, rec.Unit, rec.State,
			rrec.Name, rrec.Quantity, rrec.Unit, rrec.State)
	}
}

// tierStatus is the /readyz tiers block: where the ladder is standing
// and how much traffic each rung has carried.
type tierStatus struct {
	// Enabled is true when a rules tier is configured (and with it
	// the breaker).
	Enabled bool `json:"enabled"`
	// RouteEnabled mirrors Config.RulesRoute.
	RouteEnabled bool `json:"route_enabled"`
	// CRFServed counts requests answered with a fresh CRF decode.
	CRFServed int64 `json:"crf_served"`
	// RulesRouted counts healthy-mode short circuits to the rules
	// tier.
	RulesRouted int64 `json:"rules_routed"`
	// RulesDegradedServed counts phrases answered by the rules tier
	// because the CRF tier was open, saturated, or panicking.
	RulesDegradedServed int64 `json:"rules_degraded_served"`
	// AgreementSampled / Disagreements are the cross-tier audit
	// counters: sampled comparisons where the rules tier was
	// confident, and how many of those disagreed with the CRF record.
	AgreementSampled int64 `json:"agreement_sampled"`
	Disagreements    int64 `json:"disagreements"`
	// Breaker is the CRF-tier breaker snapshot.
	Breaker breaker.Stats `json:"breaker"`
}

// tierStatusNow assembles the /readyz tiers block.
func (s *Server) tierStatusNow() tierStatus {
	return tierStatus{
		Enabled:             s.cfg.Rules != nil,
		RouteEnabled:        s.cfg.RulesRoute,
		CRFServed:           s.crfServed.Load(),
		RulesRouted:         s.rulesRouted.Load(),
		RulesDegradedServed: s.rulesDegraded.Load(),
		AgreementSampled:    s.auditSampled.Load(),
		Disagreements:       s.auditDisagree.Load(),
		Breaker:             s.brk.Stats(),
	}
}
