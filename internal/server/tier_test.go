package server

// The `make tier-test` drills for the degradation ladder (DESIGN §15):
// the differential byte-identity contract (a tier-configured server
// with routing off answers exactly like the pre-tier server), the
// trip→degrade→recover chaos drill (CRF tier dead: zero 5xx, every
// miss answers 200 tier:"rules", breaker recovers on a fake clock —
// no sleeps anywhere), and the smaller ladder rungs: saturated misses
// degrading instead of shedding, healthy-mode routing, mixed-batch
// fallback, canary-rejected reloads feeding the breaker, and the
// /readyz tiers block.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recipemodel/internal/breaker"
	"recipemodel/internal/core"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/rules"
)

// tierClock is the injected breaker clock: no request ever waits on
// wall time, recovery is driven by explicit Advance calls.
type tierClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *tierClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tierClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// switchPipe is a countingPipe with a kill switch: while dead, every
// decode fails as a contained tagger panic — the "CRF tier is down"
// chaos prop.
type switchPipe struct {
	countingPipe
	dead atomic.Bool
}

func (p *switchPipe) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	if p.dead.Load() {
		return core.IngredientRecord{Phrase: phrase}, quarantine.ErrTaggerPanic
	}
	return p.countingPipe.AnnotateIngredientChecked(phrase)
}

func (p *switchPipe) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	if p.dead.Load() {
		recs := make([]core.IngredientRecord, len(phrases))
		rejs := make([]quarantine.Rejection, 0, len(phrases))
		for i, ph := range phrases {
			rejs = append(rejs, quarantine.Reject(i, ph, quarantine.ErrTaggerPanic))
		}
		return recs, rejs, nil
	}
	return p.countingPipe.AnnotateIngredientsPartial(ctx, phrases)
}

// tierChaosMix is chaosMix without the panic-class phrases: contained
// pipeline panics intentionally diverge between the tiered and plain
// servers (200 tier:"rules" beats a 422), so the byte-identity
// contract is stated over everything else — hot duplicates, canonical
// variants, input poison, and batches.
func tierChaosMix() []chaosRequest {
	reqs := chaosMix()
	out := reqs[:0]
	for _, r := range reqs {
		if strings.Contains(r.body, "panic:") {
			continue
		}
		out = append(out, r)
	}
	return out
}

// TestTierDifferential pins the acceptance contract: with a rules
// tier and breaker configured but routing off and the breaker closed,
// every annotation response — single, batch, hit, miss, rejection —
// is byte-identical to the pre-tier server's, cached or not, serial
// or concurrent. The ladder must cost nothing until it is needed.
func TestTierDifferential(t *testing.T) {
	reqs := tierChaosMix()
	quiet := log.New(io.Discard, "", 0)

	oracleSrv := NewWithConfig(&countingPipe{tag: "v1"}, nil, Config{Logger: quiet})
	oracleSrv.SetReady(true)
	oracle := replay(t, oracleSrv, reqs, 1)

	for _, cacheEntries := range []int{0, 256} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("cache=%d,workers=%d", cacheEntries, workers), func(t *testing.T) {
				s := NewWithConfig(&countingPipe{tag: "v1"}, nil, Config{
					Logger:       quiet,
					CacheEntries: cacheEntries,
					Rules:        rules.New(),
				})
				s.SetReady(true)
				got := replay(t, s, reqs, workers)
				for i := range got {
					if got[i] != oracle[i] {
						t.Fatalf("request %d (%s %s) diverged from the pre-tier server:\ntier:   %d %s\noracle: %d %s",
							i, reqs[i].path, reqs[i].body,
							got[i].code, got[i].body, oracle[i].code, oracle[i].body)
					}
				}
				st := s.tierStatusNow()
				if st.RulesRouted != 0 || st.RulesDegradedServed != 0 {
					t.Fatalf("rules tier served traffic on a healthy run: %+v", st)
				}
				if st.Breaker.State != "closed" || st.Breaker.Trips != 0 {
					t.Fatalf("breaker moved on a healthy run: %+v", st.Breaker)
				}
			})
		}
	}
}

// degradedAnnotation is the tierRecord read-side for assertions.
type degradedAnnotation struct {
	core.IngredientRecord
	Degraded bool   `json:"degraded"`
	Tier     string `json:"tier"`
}

// TestTierChaosDrill is the trip→degrade→recover acceptance drill:
// the CRF tier is switched dead, a burst of uncached phrases arrives,
// and not one answers 5xx or 429 — every one is 200 tier:"rules" (or
// a cache hit for the pre-warmed hot phrase). The breaker trips on
// the failure window, then the tier heals, the injected clock jumps
// past the open interval, and CloseAfter probe successes close the
// breaker — after which responses are byte-identical to a
// never-failed oracle. No time.Sleep anywhere.
func TestTierChaosDrill(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	clk := &tierClock{now: time.Unix(1000, 0)}
	pipe := &switchPipe{countingPipe: countingPipe{tag: "v1"}}
	const closeAfter = 2
	s := NewWithConfig(pipe, nil, Config{
		Logger:       quiet,
		CacheEntries: 128,
		Rules:        rules.New(),
		Breaker: breaker.Config{
			Window:      8,
			FailureRate: 0.5,
			MinSamples:  2,
			OpenTimeout: time.Second,
			MaxProbes:   1,
			CloseAfter:  closeAfter,
			Clock:       clk.Now,
		},
	})
	s.SetReady(true)

	oracleSrv := NewWithConfig(&countingPipe{tag: "v1"}, nil, Config{Logger: quiet})
	oracleSrv.SetReady(true)

	// Warm the hot phrase while healthy: during the outage it must
	// keep answering as a plain cache hit.
	if w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt")); w.Code != 200 {
		t.Fatalf("warm-up = %d", w.Code)
	}

	pipe.dead.Store(true)
	for i := 0; i < 40; i++ {
		phrase := fmt.Sprintf("outage miss %d", i)
		w := do(t, s, http.MethodPost, "/annotate", annotateBody(phrase))
		if w.Code != 200 {
			t.Fatalf("outage request %d = %d (never-500 broken): %s", i, w.Code, w.Body.String())
		}
		var resp degradedAnnotation
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("outage request %d: %v", i, err)
		}
		if !resp.Degraded || resp.Tier != "rules" || resp.Phrase != phrase {
			t.Fatalf("outage request %d not served by the rules tier: %s", i, w.Body.String())
		}
	}
	// The pre-warmed hot phrase still answers plainly from the cache.
	if w := do(t, s, http.MethodPost, "/annotate", annotateBody("salt")); w.Code != 200 || strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("cached hot phrase during outage = %d %s", w.Code, w.Body.String())
	}
	// Batches degrade whole: every slot 200-equivalent, envelope marked.
	b, _ := json.Marshal(map[string][]string{"phrases": {"2 eggs", "1 tbsp butter"}})
	if w := do(t, s, http.MethodPost, "/annotate/batch", string(b)); w.Code != 200 {
		t.Fatalf("outage batch = %d %s", w.Code, w.Body.String())
	} else if resp := decodeBatch(t, w); !resp.Degraded || resp.Tier != "rules" || resp.OK != 2 {
		t.Fatalf("outage batch envelope = %+v", resp)
	}
	st := s.tierStatusNow()
	if st.Breaker.State != "open" || st.Breaker.Trips == 0 {
		t.Fatalf("breaker did not trip during the outage: %+v", st.Breaker)
	}
	if st.RulesDegradedServed == 0 {
		t.Fatalf("no degraded serves counted: %+v", st)
	}

	// Input poison during the outage still rejects 422, identically to
	// the healthy server (both tiers sanitize alike).
	wOut := do(t, s, http.MethodPost, "/annotate", annotateBody("   "))
	wOracle := do(t, oracleSrv, http.MethodPost, "/annotate", annotateBody("   "))
	if wOut.Code != 422 || wOut.Code != wOracle.Code || wOut.Body.String() != wOracle.Body.String() {
		t.Fatalf("poison during outage diverged: %d %s vs %d %s",
			wOut.Code, wOut.Body.String(), wOracle.Code, wOracle.Body.String())
	}

	// Heal and advance past the open interval: the next requests are
	// the half-open probes, decoded on the CRF tier, and closeAfter
	// successes close the breaker — the whole recovery inside the
	// configured probe budget, no wall clock involved.
	pipe.dead.Store(false)
	clk.Advance(time.Second)
	for i := 0; i < closeAfter; i++ {
		phrase := fmt.Sprintf("probe %d", i)
		w := do(t, s, http.MethodPost, "/annotate", annotateBody(phrase))
		if w.Code != 200 || strings.Contains(w.Body.String(), "degraded") {
			t.Fatalf("probe %d = %d %s", i, w.Code, w.Body.String())
		}
	}
	st = s.tierStatusNow()
	if st.Breaker.State != "closed" || st.Breaker.Closes == 0 {
		t.Fatalf("breaker did not recover within the probe budget: %+v", st.Breaker)
	}
	// Post-recovery: byte-identical to the never-failed oracle.
	got := do(t, s, http.MethodPost, "/annotate", annotateBody("fresh after recovery"))
	want := do(t, oracleSrv, http.MethodPost, "/annotate", annotateBody("fresh after recovery"))
	if got.Code != want.Code || got.Body.String() != want.Body.String() {
		t.Fatalf("post-recovery diverged:\ngot:  %d %s\nwant: %d %s",
			got.Code, got.Body.String(), want.Code, want.Body.String())
	}
}

// TestTierSaturatedMissServesRules: the third ladder rung — a miss
// the limiter cannot admit answers from the rules tier (no admission
// needed) instead of shedding 429. Gated on a blocked slow decode, no
// sleeps.
func TestTierSaturatedMissServesRules(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	pipe := &countingPipe{tag: "v1", slow: make(chan struct{})}
	s := NewWithConfig(pipe, nil, Config{
		Logger:       quiet,
		CacheEntries: 128,
		MaxInFlight:  1,
		Rules:        rules.New(),
	})
	s.SetReady(true)

	held := make(chan *httptest.ResponseRecorder, 1)
	go func() { held <- do(t, s, http.MethodPost, "/annotate", annotateBody("slow: stew")) }()
	waitUntil(t, func() bool { return s.limiter.Saturated() })

	w := do(t, s, http.MethodPost, "/annotate", annotateBody("2 cups onion"))
	if w.Code != 200 {
		t.Fatalf("saturated miss = %d, want 200 from the rules tier: %s", w.Code, w.Body.String())
	}
	var resp degradedAnnotation
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Tier != "rules" || resp.Name != "onion" {
		t.Fatalf("saturated miss payload = %s", w.Body.String())
	}
	close(pipe.slow)
	if first := <-held; first.Code != 200 {
		t.Fatalf("held decode = %d", first.Code)
	}
	if st := s.tierStatusNow(); st.Breaker.State != "closed" {
		t.Fatalf("saturation must not move the breaker: %+v", st.Breaker)
	}
}

// TestTierRoutesHealthy: with -rules-route on, a phrase the rules
// tier annotates confidently short-circuits past the CRF decode
// entirely (plain envelope, no degradation markers); an unconfident
// phrase falls through to the CRF tier.
func TestTierRoutesHealthy(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	pipe := &countingPipe{tag: "crf"}
	s := NewWithConfig(pipe, nil, Config{
		Logger:         quiet,
		Rules:          rules.New(),
		RulesRoute:     true,
		RulesThreshold: 0.9,
	})
	s.SetReady(true)

	w := do(t, s, http.MethodPost, "/annotate", annotateBody("2 cups onion"))
	if w.Code != 200 {
		t.Fatalf("routed = %d", w.Code)
	}
	var rec core.IngredientRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "onion" || rec.Unit != "cups" || rec.Phrase != "2 cups onion" {
		t.Fatalf("routed record = %+v, want the rules tier's", rec)
	}
	if strings.Contains(w.Body.String(), "degraded") {
		t.Fatalf("routed response carries degradation markers: %s", w.Body.String())
	}
	if got := pipe.decodes.Load(); got != 0 {
		t.Fatalf("routing still decoded %d times on the CRF tier", got)
	}

	// Unknown words: confidence 0 < threshold, falls through to CRF.
	w = do(t, s, http.MethodPost, "/annotate", annotateBody("glorbified zork"))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "crf:") {
		t.Fatalf("unconfident phrase = %d %s, want a CRF decode", w.Code, w.Body.String())
	}
	st := s.tierStatusNow()
	if st.RulesRouted != 1 || st.CRFServed != 1 {
		t.Fatalf("tier counters = %+v, want 1 routed / 1 crf", st)
	}
}

// TestTierBatchMixedFallback: in a single batch, a CRF-panicking slot
// re-serves on the rules tier (tier-marked), input poison stays a 422
// item, and healthy slots keep their CRF records — the envelope is
// marked degraded, status follows the usual 207 math.
func TestTierBatchMixedFallback(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	s := NewWithConfig(fakePipe{}, nil, Config{Logger: quiet, Rules: rules.New()})
	s.SetReady(true)

	b, _ := json.Marshal(map[string][]string{"phrases": {"2 cups onion", "panic:boom", "   "}})
	w := do(t, s, http.MethodPost, "/annotate/batch", string(b))
	if w.Code != http.StatusMultiStatus {
		t.Fatalf("mixed batch = %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBatch(t, w)
	if !resp.Degraded || resp.Tier != "rules" || resp.OK != 2 || resp.Rejected != 1 {
		t.Fatalf("envelope = %+v", resp)
	}
	if r := resp.Results[0]; r.Status != "ok" || r.Tier != "" || r.Record.Name != "onion" {
		t.Fatalf("healthy slot = %+v", r)
	}
	if r := resp.Results[1]; r.Status != "ok" || r.Tier != "rules" || r.Record.Phrase != "panic:boom" {
		t.Fatalf("panic slot = %+v", r)
	}
	if r := resp.Results[2]; r.Status != "rejected" || r.Code != quarantine.CodeEmptyAfterClean {
		t.Fatalf("poison slot = %+v", r)
	}
}

// TestTierReloadFailureFeedsBreaker: a canary-rejected (or unloadable)
// reload is CRF-tier evidence — it lands one failure outcome in the
// breaker window.
func TestTierReloadFailureFeedsBreaker(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	s := NewWithConfig(&countingPipe{tag: "v1"}, nil, Config{
		Logger: quiet,
		Rules:  rules.New(),
		Loader: func() (Pipeline, string, error) { return nil, "", errors.New("bundle corrupt") },
	})
	s.SetReady(true)
	if _, err := s.Reload(); err == nil {
		t.Fatal("reload unexpectedly succeeded")
	}
	st := s.tierStatusNow().Breaker
	if st.Samples != 1 || st.Failures != 1 {
		t.Fatalf("breaker window after rejected reload = %+v, want 1 failure sample", st)
	}
}

// TestTierReadyz: the /readyz tiers block reports posture — enabled
// with breaker state when configured, disabled (closed, empty) when
// not — without disturbing the rest of the payload.
func TestTierReadyz(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	s := NewWithConfig(fakePipe{}, nil, Config{Logger: quiet, Rules: rules.New(), RulesRoute: true})
	s.SetReady(true)
	w := do(t, s, http.MethodGet, "/readyz", "")
	if w.Code != 200 {
		t.Fatalf("readyz = %d", w.Code)
	}
	var resp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Tiers.Enabled || !resp.Tiers.RouteEnabled || resp.Tiers.Breaker.State != "closed" {
		t.Fatalf("tiers block = %+v", resp.Tiers)
	}

	plain := New(fakePipe{}, nil)
	plain.SetReady(true)
	w = do(t, plain, http.MethodGet, "/readyz", "")
	var presp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &presp); err != nil {
		t.Fatal(err)
	}
	if presp.Tiers.Enabled || presp.Tiers.Breaker.State != "closed" {
		t.Fatalf("plain tiers block = %+v", presp.Tiers)
	}
}
