// Package similarity computes recipe-to-recipe similarity over the
// mined structure — the second application the paper demonstrates on
// RecipeDB (§IV). Two recipes are compared on three facets of the
// model: the ingredient-name sets, the cooking-technique sets, and the
// temporal process sequence (bigram overlap), combined with
// configurable weights.
package similarity

import (
	"sort"
	"strings"

	"recipemodel/internal/core"
)

// Weights control the facet mix; they should sum to 1.
type Weights struct {
	Ingredients float64
	Processes   float64
	Sequence    float64
}

// DefaultWeights balance the facets the way the structure-aware
// similarity of the paper's application does.
var DefaultWeights = Weights{Ingredients: 0.5, Processes: 0.3, Sequence: 0.2}

// jaccard computes |a∩b| / |a∪b| over string sets.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func ingredientSet(m *core.RecipeModel) map[string]bool {
	out := map[string]bool{}
	for _, r := range m.Ingredients {
		if r.Name != "" {
			out[strings.ToLower(r.Name)] = true
		}
	}
	return out
}

func processSet(m *core.RecipeModel) map[string]bool {
	out := map[string]bool{}
	for _, e := range m.Events {
		out[strings.ToLower(e.Process)] = true
	}
	return out
}

func processBigrams(m *core.RecipeModel) map[string]bool {
	out := map[string]bool{}
	var prev string
	for _, e := range m.Events {
		p := strings.ToLower(e.Process)
		if prev != "" {
			out[prev+"→"+p] = true
		}
		prev = p
	}
	return out
}

// Score computes the weighted structural similarity of two modeled
// recipes in [0, 1].
func Score(a, b *core.RecipeModel, w Weights) float64 {
	return w.Ingredients*jaccard(ingredientSet(a), ingredientSet(b)) +
		w.Processes*jaccard(processSet(a), processSet(b)) +
		w.Sequence*jaccard(processBigrams(a), processBigrams(b))
}

// Ranked pairs a candidate index with its similarity score.
type Ranked struct {
	Index int
	Score float64
}

// MostSimilar ranks candidates by similarity to the query, descending;
// ties break by index for determinism.
func MostSimilar(query *core.RecipeModel, candidates []*core.RecipeModel, w Weights) []Ranked {
	out := make([]Ranked, len(candidates))
	for i, c := range candidates {
		out[i] = Ranked{Index: i, Score: Score(query, c, w)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}
