package similarity

import (
	"math"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/relations"
)

func model(names []string, procs []string) *core.RecipeModel {
	m := &core.RecipeModel{}
	for _, n := range names {
		m.Ingredients = append(m.Ingredients, core.IngredientRecord{Name: n})
	}
	for i, p := range procs {
		m.Events = append(m.Events, core.Event{Step: i, Relation: relations.Relation{Process: p}})
	}
	return m
}

func TestScoreIdentical(t *testing.T) {
	a := model([]string{"tomato", "basil"}, []string{"chop", "mix", "bake"})
	if s := Score(a, a, DefaultWeights); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-similarity = %v", s)
	}
}

func TestScoreDisjoint(t *testing.T) {
	a := model([]string{"tomato"}, []string{"chop"})
	b := model([]string{"beef"}, []string{"grill"})
	if s := Score(a, b, DefaultWeights); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
}

func TestScorePartial(t *testing.T) {
	a := model([]string{"tomato", "basil"}, []string{"chop", "mix"})
	b := model([]string{"tomato", "mozzarella"}, []string{"chop", "bake"})
	s := Score(a, b, DefaultWeights)
	if s <= 0 || s >= 1 {
		t.Fatalf("partial similarity = %v", s)
	}
}

func TestScoreSymmetric(t *testing.T) {
	a := model([]string{"tomato", "basil"}, []string{"chop", "mix"})
	b := model([]string{"tomato"}, []string{"mix", "chop"})
	if Score(a, b, DefaultWeights) != Score(b, a, DefaultWeights) {
		t.Fatal("similarity not symmetric")
	}
}

func TestSequenceFacetDistinguishesOrder(t *testing.T) {
	// same process sets, different order → sequence facet differs.
	a := model([]string{"x"}, []string{"chop", "boil", "serve"})
	b := model([]string{"x"}, []string{"chop", "boil", "serve"})
	c := model([]string{"x"}, []string{"serve", "boil", "chop"})
	w := Weights{Sequence: 1}
	if Score(a, b, w) != 1 {
		t.Fatalf("identical order score = %v", Score(a, b, w))
	}
	if Score(a, c, w) >= 1 {
		t.Fatalf("reversed order should differ: %v", Score(a, c, w))
	}
}

func TestMostSimilarRanking(t *testing.T) {
	q := model([]string{"tomato", "basil", "mozzarella"}, []string{"slice", "layer"})
	cands := []*core.RecipeModel{
		model([]string{"beef", "onion"}, []string{"grill"}),
		model([]string{"tomato", "basil"}, []string{"slice", "layer"}),
		model([]string{"tomato"}, []string{"chop"}),
	}
	ranked := MostSimilar(q, cands, DefaultWeights)
	if ranked[0].Index != 1 {
		t.Fatalf("best match = %d", ranked[0].Index)
	}
	if ranked[len(ranked)-1].Score > ranked[0].Score {
		t.Fatal("ranking not descending")
	}
}

func TestMostSimilarEmpty(t *testing.T) {
	if got := MostSimilar(model(nil, nil), nil, DefaultWeights); len(got) != 0 {
		t.Fatal("empty candidates")
	}
	// two empty models: all facets degenerate to 0.
	if s := Score(model(nil, nil), model(nil, nil), DefaultWeights); s != 0 {
		t.Fatalf("empty similarity = %v", s)
	}
}

func TestLearnWeightsIDF(t *testing.T) {
	// salt in every recipe; saffron in one.
	var models []*core.RecipeModel
	for i := 0; i < 10; i++ {
		names := []string{"salt"}
		if i == 0 {
			names = append(names, "saffron")
		}
		models = append(models, model(names, nil))
	}
	w := LearnWeights(models)
	if w.IDF("saffron") <= w.IDF("salt") {
		t.Fatalf("rare ingredient should outweigh common: %v vs %v",
			w.IDF("saffron"), w.IDF("salt"))
	}
	if w.IDF("never-seen") < w.IDF("saffron") {
		t.Fatal("unseen names should get the maximum weight")
	}
}

func TestWeightedScorePrefersRareOverlap(t *testing.T) {
	var corpus []*core.RecipeModel
	for i := 0; i < 20; i++ {
		corpus = append(corpus, model([]string{"salt", "water"}, []string{"boil"}))
	}
	corpus = append(corpus, model([]string{"saffron", "salt"}, []string{"boil"}))
	cw := LearnWeights(corpus)

	q := model([]string{"saffron", "salt"}, []string{"boil"})
	shareRare := model([]string{"saffron", "water"}, []string{"boil"})
	shareCommon := model([]string{"salt", "water"}, []string{"boil"})
	wts := Weights{Ingredients: 1}
	if WeightedScore(q, shareRare, cw, wts) <= WeightedScore(q, shareCommon, cw, wts) {
		t.Fatal("sharing saffron should score higher than sharing salt")
	}
	// unweighted Jaccard cannot tell them apart.
	if Score(q, shareRare, wts) != Score(q, shareCommon, wts) {
		t.Fatal("fixture should be Jaccard-symmetric")
	}
}

func TestMostSimilarWeighted(t *testing.T) {
	corpus := []*core.RecipeModel{
		model([]string{"salt"}, []string{"boil"}),
		model([]string{"saffron"}, []string{"boil"}),
	}
	cw := LearnWeights(corpus)
	q := model([]string{"saffron"}, []string{"boil"})
	ranked := MostSimilarWeighted(q, corpus, cw, DefaultWeights)
	if ranked[0].Index != 1 {
		t.Fatalf("ranking = %+v", ranked)
	}
	if len(MostSimilarWeighted(q, nil, cw, DefaultWeights)) != 0 {
		t.Fatal("empty candidates")
	}
}
