package similarity

import (
	"math"
	"sort"
	"strings"

	"recipemodel/internal/core"
)

// CorpusWeights holds inverse-document-frequency weights learned from
// a mined corpus: sharing a rare ingredient (saffron) says more about
// two recipes than sharing a ubiquitous one (salt).
type CorpusWeights struct {
	idf  map[string]float64
	docs int
}

// LearnWeights computes IDF over the ingredient names of a corpus.
func LearnWeights(models []*core.RecipeModel) *CorpusWeights {
	df := map[string]int{}
	for _, m := range models {
		for name := range ingredientSet(m) {
			df[name]++
		}
	}
	w := &CorpusWeights{idf: make(map[string]float64, len(df)), docs: len(models)}
	for name, n := range df {
		w.idf[name] = math.Log(float64(len(models)+1) / float64(n+1))
	}
	return w
}

// IDF returns the weight for an ingredient name; unseen names get the
// maximum possible weight (they are by definition rare).
func (w *CorpusWeights) IDF(name string) float64 {
	if v, ok := w.idf[strings.ToLower(name)]; ok {
		return v
	}
	return math.Log(float64(w.docs + 1))
}

// WeightedScore is Score with the ingredient facet replaced by
// IDF-weighted Jaccard: Σ idf(shared) / Σ idf(union).
func WeightedScore(a, b *core.RecipeModel, cw *CorpusWeights, w Weights) float64 {
	sa, sb := ingredientSet(a), ingredientSet(b)
	// Sum in sorted-name order: float addition is not associative and
	// Go randomizes map iteration, so summing in map order makes the
	// score vary between calls at the last ulp — enough to break the
	// byte-identity contract of the sharded query service.
	names := make([]string, 0, len(sa)+len(sb))
	for name := range sa {
		names = append(names, name)
	}
	for name := range sb {
		if !sa[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var inter, union float64
	for _, name := range names {
		idf := cw.IDF(name)
		union += idf
		if sa[name] && sb[name] {
			inter += idf
		}
	}
	ingScore := 0.0
	if union > 0 {
		ingScore = inter / union
	}
	return w.Ingredients*ingScore +
		w.Processes*jaccard(processSet(a), processSet(b)) +
		w.Sequence*jaccard(processBigrams(a), processBigrams(b))
}

// MostSimilarWeighted ranks candidates by IDF-weighted similarity.
func MostSimilarWeighted(query *core.RecipeModel, candidates []*core.RecipeModel, cw *CorpusWeights, w Weights) []Ranked {
	out := make([]Ranked, len(candidates))
	for i, c := range candidates {
		out[i] = Ranked{Index: i, Score: WeightedScore(query, c, cw, w)}
	}
	sortRanked(out)
	return out
}

// sortRanked orders descending by score, ties by index.
func sortRanked(out []Ranked) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Score > out[j-1].Score ||
				(out[j].Score == out[j-1].Score && out[j].Index < out[j-1].Index) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
}
