// Top-K selection and merging: the ranking primitives of the sharded
// query service. A shard never needs its full corpus slice ranked —
// only its local top K — and the coordinator needs the shard lists
// folded into one global order. Both sides use the same deterministic
// total order (score descending, index ascending), so the merged
// result of N shards is byte-identical to a single shard ranking the
// union: the property the degraded-partial-result drills pin.

package similarity

import (
	"container/heap"
	"sort"

	"recipemodel/internal/core"
)

// rankedBetter is the deterministic total order on results: higher
// score first, ties broken by ascending index.
func rankedBetter(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// worstHeap is a min-heap under rankedBetter: the root is the worst
// kept result, the one a better candidate evicts.
type worstHeap []Ranked

func (h worstHeap) Len() int           { return len(h) }
func (h worstHeap) Less(i, j int) bool { return rankedBetter(h[j], h[i]) }
func (h worstHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *worstHeap) Push(x any)        { *h = append(*h, x.(Ranked)) }
func (h *worstHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// TopK selects the k best of results under the deterministic order
// without fully sorting them — O(n log k) against the O(n²) insertion
// sort of sortRanked — and returns them best-first. k <= 0 or
// k >= len(results) degrades to a full ranking.
func TopK(results []Ranked, k int) []Ranked {
	if k <= 0 || k >= len(results) {
		out := append([]Ranked(nil), results...)
		sort.Slice(out, func(i, j int) bool { return rankedBetter(out[i], out[j]) })
		return out
	}
	h := make(worstHeap, 0, k+1)
	for _, r := range results {
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		if rankedBetter(r, h[0]) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Ranked, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Ranked)
	}
	return out
}

// MostSimilarWeightedTopK scores every candidate against the query and
// returns the k most similar, best-first — the per-shard form of
// MostSimilarWeighted that never materializes a full ranking.
func MostSimilarWeightedTopK(query *core.RecipeModel, candidates []*core.RecipeModel, cw *CorpusWeights, w Weights, k int) []Ranked {
	scored := make([]Ranked, len(candidates))
	for i, c := range candidates {
		scored[i] = Ranked{Index: i, Score: WeightedScore(query, c, cw, w)}
	}
	return TopK(scored, k)
}

// MergeTopK folds independently ranked lists into the overall top k
// under the same deterministic order. The inputs need not be sorted;
// shard coordinators pass each surviving shard's local top K.
func MergeTopK(lists [][]Ranked, k int) []Ranked {
	var all []Ranked
	for _, l := range lists {
		all = append(all, l...)
	}
	return TopK(all, k)
}
