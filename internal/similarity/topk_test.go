package similarity

import (
	"math/rand"
	"reflect"
	"testing"

	"recipemodel/internal/core"
)

// randomRanked builds a result set with deliberate score ties so the
// index tiebreak is exercised.
func randomRanked(rng *rand.Rand, n int) []Ranked {
	out := make([]Ranked, n)
	for i := range out {
		out[i] = Ranked{Index: i, Score: float64(rng.Intn(n/2+1)) / 10}
	}
	rng.Shuffle(n, func(i, j int) { out[i].Index, out[j].Index = out[j].Index, out[i].Index })
	return out
}

// TestTopKMatchesFullSort: TopK(results, k) must equal the first k of
// the full deterministic sort, for every k — the heap is an
// optimization, never a different order.
func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 17, 64} {
		results := randomRanked(rng, n)
		full := append([]Ranked(nil), results...)
		sortRanked(full)
		for k := -1; k <= n+2; k++ {
			got := TopK(results, k)
			want := full
			if k > 0 && k < n {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d:\n  got  %v\n  want %v", n, k, got, want)
			}
		}
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	results := []Ranked{{Index: 0, Score: 1}, {Index: 1, Score: 3}, {Index: 2, Score: 2}}
	snapshot := append([]Ranked(nil), results...)
	TopK(results, 2)
	TopK(results, 0)
	if !reflect.DeepEqual(results, snapshot) {
		t.Fatalf("input mutated: %v", results)
	}
}

// TestMergeTopKEqualsUnion: merging per-shard top-K lists equals the
// top K of the union — the coordinator's correctness condition.
func TestMergeTopKEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	all := randomRanked(rng, 40)
	const k = 8
	// Partition round-robin into 4 "shards", rank each locally.
	lists := make([][]Ranked, 4)
	for i, r := range all {
		lists[i%4] = append(lists[i%4], r)
	}
	for i := range lists {
		lists[i] = TopK(lists[i], k)
	}
	got := MergeTopK(lists, k)
	want := TopK(all, k)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged shard top-K diverges from union top-K:\n  got  %v\n  want %v", got, want)
	}
}

// TestMostSimilarWeightedTopKMatchesFullRanking pins the per-shard
// form against the existing full ranking.
func TestMostSimilarWeightedTopKMatchesFullRanking(t *testing.T) {
	mk := func(names ...string) *core.RecipeModel {
		m := &core.RecipeModel{Title: "t"}
		for _, n := range names {
			m.Ingredients = append(m.Ingredients, core.IngredientRecord{Name: n})
		}
		return m
	}
	corpus := []*core.RecipeModel{
		mk("onion", "garlic"),
		mk("onion", "tomato"),
		mk("garlic", "tomato", "basil"),
		mk("rice"),
		mk("onion", "garlic", "tomato"),
	}
	cw := LearnWeights(corpus)
	query := mk("onion", "garlic")
	full := MostSimilarWeighted(query, corpus, cw, DefaultWeights)
	for k := 1; k <= len(corpus)+1; k++ {
		got := MostSimilarWeightedTopK(query, corpus, cw, DefaultWeights, k)
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d:\n  got  %v\n  want %v", k, got, want)
		}
	}
}
