package snapshot

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedVersion installs one real snapshot and returns its manifest
// and first-segment bytes — the honest starting points the fuzzer
// mutates from.
func buildSeedVersion(tb testing.TB) (manData, segData []byte) {
	tb.Helper()
	st, err := OpenStore(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	v, err := st.Build(testModels(5))
	if err != nil {
		tb.Fatal(err)
	}
	manData, err = os.ReadFile(filepath.Join(st.versionDir(v), "MANIFEST.json"))
	if err != nil {
		tb.Fatal(err)
	}
	segData, err = os.ReadFile(filepath.Join(st.versionDir(v), "seg-000000.jsonl"))
	if err != nil {
		tb.Fatal(err)
	}
	return manData, segData
}

// FuzzLoadSnapshot pins the loader's survival contract: whatever bytes
// sit where the manifest and segment should be — torn, transposed,
// hostile, or empty — LoadVersion returns a usable snapshot or an
// error, never a panic, and never a snapshot inconsistent with the
// manifest it trusted.
func FuzzLoadSnapshot(f *testing.F) {
	manData, segData := buildSeedVersion(f)
	f.Add(manData, segData)                                // the valid pair
	f.Add(manData, segData[:len(segData)/2])               // torn segment
	f.Add(manData[:len(manData)/2], segData)               // torn manifest
	f.Add(segData, manData)                                // transposed
	f.Add([]byte("{}"), []byte{})                          // empty manifest object
	f.Add([]byte(`{"docs":-1}`), []byte("null\n"))         // negative docs
	f.Add([]byte(`{"segments":[{"name":".."}]}`), segData) // escaping name
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, man, seg []byte) {
		dir := t.TempDir()
		verDir := filepath.Join(dir, "snapshots", "v000001")
		if err := os.MkdirAll(verDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(verDir, "MANIFEST.json"), man, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(verDir, "seg-000000.jsonl"), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := st.LoadVersion("v000001")
		if err != nil {
			return
		}
		for i, m := range snap.Models {
			if m == nil {
				t.Fatalf("accepted snapshot holds nil model at doc %d", i)
			}
		}
	})
}

// TestLoadVersionFuzzRegressions replays the fuzz corpus classes under
// plain `go test`, so the contract is exercised without -fuzz.
func TestLoadVersionFuzzRegressions(t *testing.T) {
	manData, segData := buildSeedVersion(t)
	cases := map[string]struct{ man, seg []byte }{
		"torn segment":   {manData, segData[:len(segData)/2]},
		"torn manifest":  {manData[:len(manData)/2], segData},
		"transposed":     {segData, manData},
		"empty manifest": {[]byte("{}"), nil},
		"negative docs":  {[]byte(`{"docs":-1}`), []byte("null\n")},
		"escaping name":  {[]byte(`{"segments":[{"name":"../CURRENT"}]}`), segData},
		"empty files":    {nil, nil},
	}
	for name, c := range cases {
		dir := t.TempDir()
		verDir := filepath.Join(dir, "snapshots", "v000001")
		if err := os.MkdirAll(verDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(verDir, "MANIFEST.json"), c.man, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(verDir, "seg-000000.jsonl"), c.seg, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _ := OpenStore(dir)
		if _, err := st.LoadVersion("v000001"); err == nil && !bytes.Equal(c.man, manData) {
			t.Errorf("%s: corrupt version loaded without error", name)
		}
	}
}

// TestLoadVersionValidSeed keeps the fuzzer's honest seed honest: the
// unmutated pair must load.
func TestLoadVersionValidSeed(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Build(testModels(5)); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(context.Background())
	if err != nil || len(snap.Models) != 5 {
		t.Fatalf("valid seed: %v, %d docs", err, len(snap.Models))
	}
}
