// Package snapshot is the versioned corpus store: the crash-safe
// deployment form of a mined recipe corpus, the read-side twin of the
// model store in internal/persist. `recipemine mine` produces a JSONL
// corpus; `recipemine snapshot` packs it into an immutable, segmented,
// sha256-manifested snapshot version that the query service loads into
// memory shards and hot-swaps under traffic. Layout on disk:
//
//	<dir>/
//	  CURRENT                      ← version name, swapped by atomic rename
//	  snapshots/
//	    v000001/
//	      MANIFEST.json            ← docs + per-segment size/sha256
//	      seg-000000.jsonl         ← RecipeModel JSONL segments
//	      seg-000001.jsonl
//	    v000002/
//	      ...
//
// The install discipline is persist's, reused verbatim: segments and
// manifest are written atomically inside a hidden temp directory, the
// directory is renamed into place, and only then does CURRENT swing —
// a crash anywhere leaves CURRENT naming the previous, fully durable
// version. Loads verify every segment's size and sha256 against the
// manifest before decoding a single record, so a torn or bit-flipped
// snapshot is a named-file, expected-vs-found-digest error, never a
// half corpus. Load attempts retry with resilience.Backoff (transient
// I/O), and LoadLatestGood falls back version by version when the
// current snapshot is rejected — the server keeps serving the newest
// corpus that checks out.
package snapshot

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"recipemodel/internal/checkpoint"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/persist"
	"recipemodel/internal/resilience"
)

// FaultLoad fires at the top of every snapshot version load attempt —
// before any file is read. Tests arm it to simulate transient I/O
// failures (exercising the retry path) or a persistently unreadable
// version (exercising the fallback to the previous good snapshot).
const FaultLoad = "snapshot.load"

var _ = faults.MustRegister(FaultLoad)

// segRecords is how many recipe models one segment file holds; small
// enough that a torn tail costs one segment's re-read, large enough
// that a 100k-recipe corpus is a few dozen files, not thousands.
const segRecords = 2048

// Snapshot is one loaded corpus version: the models in their stable
// mined order. Document i of the corpus is Models[i] in every version
// of the truth — global doc ids are positions, and the query service's
// shard assignment (id mod shards) is derived from them, so any shard
// count serves the same ids.
type Snapshot struct {
	Version string
	Models  []*core.RecipeModel
}

// Store is a versioned, crash-safe corpus snapshot directory.
type Store struct {
	dir string
	// Backoff paces the per-version load retries; the zero value uses
	// the resilience defaults (3 attempts, 10ms base). Tests install a
	// no-op Sleep to keep retry drills clock-free.
	Backoff resilience.Backoff
}

// OpenStore opens (creating if necessary) a snapshot store rooted at
// dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "snapshots"), 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapshotsDir() string { return filepath.Join(s.dir, "snapshots") }

func (s *Store) versionDir(version string) string {
	return filepath.Join(s.snapshotsDir(), version)
}

// segmentEntry is one segment file's integrity record.
type segmentEntry struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	Size    int64  `json:"size"`
	SHA256  string `json:"sha256"`
}

// manifest is the per-version integrity record: total docs plus every
// segment's size and digest. A loader trusts nothing it has not
// checked against this file.
type manifest struct {
	Version  string         `json:"version"`
	Docs     int            `json:"docs"`
	Segments []segmentEntry `json:"segments"`
}

// Versions lists the installed versions in ascending order (temp
// directories from interrupted installs are excluded).
func (s *Store) Versions() ([]string, error) {
	entries, err := os.ReadDir(s.snapshotsDir())
	if err != nil {
		return nil, fmt.Errorf("snapshot: list versions: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "v") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// nextVersion allocates the next sequential version name.
func (s *Store) nextVersion() (string, error) {
	versions, err := s.Versions()
	if err != nil {
		return "", err
	}
	n := 0
	for _, v := range versions {
		var i int
		if _, err := fmt.Sscanf(v, "v%06d", &i); err == nil && i > n {
			n = i
		}
	}
	return fmt.Sprintf("v%06d", n+1), nil
}

// SetCurrent atomically points CURRENT at an installed version — also
// the rollback primitive: point it back at a previous version.
func (s *Store) SetCurrent(version string) error {
	if _, err := os.Stat(s.versionDir(version)); err != nil {
		return fmt.Errorf("snapshot: set current: version %q not installed: %w", version, err)
	}
	if err := persist.WriteCurrentPointer(s.dir, version); err != nil {
		return fmt.Errorf("snapshot: set current %s: %w", version, err)
	}
	return nil
}

// Current reads the serving version from CURRENT.
func (s *Store) Current() (string, error) {
	version, err := persist.ReadCurrentPointer(s.dir)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	return version, nil
}

// Build installs the models as a new snapshot version and swaps
// CURRENT to it, returning the version name. Models are encoded in
// their given order (positions are the corpus's global doc ids) into
// fixed-size JSONL segments; the install is two-phase, so a crash at
// any point leaves CURRENT on the previous, fully durable version.
func (s *Store) Build(models []*core.RecipeModel) (version string, err error) {
	if len(models) == 0 {
		return "", fmt.Errorf("snapshot: refusing to build an empty snapshot")
	}
	version, err = s.nextVersion()
	if err != nil {
		return "", err
	}
	tmpDir := filepath.Join(s.snapshotsDir(), ".install-"+version)
	// A previous interrupted install may have left the temp dir behind.
	if err := os.RemoveAll(tmpDir); err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	defer func() {
		if err != nil {
			os.RemoveAll(tmpDir)
		}
	}()

	man := manifest{Version: version, Docs: len(models)}
	for lo := 0; lo < len(models); lo += segRecords {
		hi := min(lo+segRecords, len(models))
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, m := range models[lo:hi] {
			if err := enc.Encode(m); err != nil {
				return "", fmt.Errorf("snapshot: install %s: encode doc %d: %w", version, lo, err)
			}
		}
		name := fmt.Sprintf("seg-%06d.jsonl", len(man.Segments))
		sum := sha256.Sum256(buf.Bytes())
		if err := checkpoint.WriteFileAtomic(filepath.Join(tmpDir, name), buf.Bytes(), 0o644); err != nil {
			return "", fmt.Errorf("snapshot: install %s: %w", version, err)
		}
		man.Segments = append(man.Segments, segmentEntry{
			Name:    name,
			Records: hi - lo,
			Size:    int64(buf.Len()),
			SHA256:  hex.EncodeToString(sum[:]),
		})
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	if err := checkpoint.WriteFileAtomic(filepath.Join(tmpDir, "MANIFEST.json"), append(manData, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	if err := os.Rename(tmpDir, s.versionDir(version)); err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	if err := checkpoint.SyncDir(s.snapshotsDir()); err != nil {
		return "", fmt.Errorf("snapshot: install %s: %w", version, err)
	}
	if err := s.SetCurrent(version); err != nil {
		return version, err
	}
	return version, nil
}

// LoadVersion loads one installed version: the manifest is read first,
// every segment's size and sha256 are checked against it, and only
// then are the records decoded. Every error names the offending file;
// checksum failures carry both the expected and the found digest.
func (s *Store) LoadVersion(version string) (*Snapshot, error) {
	if err := faults.Inject(FaultLoad); err != nil {
		return nil, fmt.Errorf("snapshot: load %s: %w", version, err)
	}
	verDir := s.versionDir(version)
	manPath := filepath.Join(verDir, "MANIFEST.json")
	manData, err := os.ReadFile(manPath)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", manPath, err)
	}
	// Build refuses empty corpora, so a manifest claiming zero (or
	// negative) docs can only be corruption.
	if man.Docs <= 0 {
		return nil, fmt.Errorf("snapshot: %s: implausible doc count %d", manPath, man.Docs)
	}
	snap := &Snapshot{Version: version}
	for _, seg := range man.Segments {
		// Segment names come from a file an attacker or a corruption may
		// have rewritten; confine them to the version directory.
		if seg.Name != filepath.Base(seg.Name) || seg.Name == "." || seg.Name == ".." {
			return nil, fmt.Errorf("snapshot: %s: invalid segment name %q", manPath, seg.Name)
		}
		segPath := filepath.Join(verDir, seg.Name)
		data, err := os.ReadFile(segPath)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if int64(len(data)) != seg.Size {
			return nil, fmt.Errorf("snapshot: %s: size %d bytes, manifest expects %d", segPath, len(data), seg.Size)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != seg.SHA256 {
			return nil, fmt.Errorf("snapshot: %s: checksum mismatch: manifest expects sha256 %s, file has %s", segPath, seg.SHA256, got)
		}
		records, err := decodeSegment(data)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %s: %w", segPath, err)
		}
		if len(records) != seg.Records {
			return nil, fmt.Errorf("snapshot: %s: holds %d records, manifest expects %d", segPath, len(records), seg.Records)
		}
		snap.Models = append(snap.Models, records...)
	}
	if len(snap.Models) != man.Docs {
		return nil, fmt.Errorf("snapshot: %s: segments hold %d docs, manifest expects %d", manPath, len(snap.Models), man.Docs)
	}
	return snap, nil
}

// decodeSegment parses one segment's JSONL records.
func decodeSegment(data []byte) ([]*core.RecipeModel, error) {
	var out []*core.RecipeModel
	dec := json.NewDecoder(bufio.NewReader(bytes.NewReader(data)))
	for {
		var m core.RecipeModel
		if err := dec.Decode(&m); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("decode record %d: %w", len(out), err)
		}
		out = append(out, &m)
	}
}

// loadVersionRetry is LoadVersion behind the store's backoff: a
// transient read failure (or an armed snapshot.load fault with a
// limit) is retried; a persistent one comes back as the last error.
func (s *Store) loadVersionRetry(ctx context.Context, version string) (*Snapshot, error) {
	var snap *Snapshot
	err := resilience.Retry(ctx, s.Backoff, func(context.Context) error {
		var lerr error
		snap, lerr = s.LoadVersion(version)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// Load opens the CURRENT version, verifying integrity before decode
// and retrying transient failures per the store's backoff.
func (s *Store) Load(ctx context.Context) (*Snapshot, error) {
	version, err := s.Current()
	if err != nil {
		return nil, err
	}
	return s.loadVersionRetry(ctx, version)
}

// LoadLatestGood loads the newest snapshot that passes integrity
// checks: CURRENT first, then earlier versions in descending order
// when CURRENT is torn or corrupt — the automatic-fallback form the
// server boots and reloads through, so one bad publish never takes
// the corpus offline. The rejected slice reports each version that
// failed (named files, expected-vs-found digests) for the caller to
// log; err is non-nil only when no version loads at all.
func (s *Store) LoadLatestGood(ctx context.Context) (snap *Snapshot, rejected []error, err error) {
	current, err := s.Current()
	if err != nil {
		return nil, nil, err
	}
	versions, err := s.Versions()
	if err != nil {
		return nil, nil, err
	}
	// CURRENT first, then everything newer-to-older, skipping CURRENT's
	// own slot in the walk.
	try := []string{current}
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i] != current {
			try = append(try, versions[i])
		}
	}
	for _, v := range try {
		snap, lerr := s.loadVersionRetry(ctx, v)
		if lerr == nil {
			return snap, rejected, nil
		}
		rejected = append(rejected, fmt.Errorf("version %s rejected: %w", v, lerr))
	}
	return nil, rejected, fmt.Errorf("snapshot: no loadable version in %s (tried %d)", s.dir, len(try))
}
