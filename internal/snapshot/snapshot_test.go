package snapshot

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/relations"
	"recipemodel/internal/resilience"
)

// testModels builds n distinct, structurally varied recipe models
// without training anything.
func testModels(n int) []*core.RecipeModel {
	names := []string{"onion", "garlic", "tomato", "saffron", "butter", "flour"}
	procs := []string{"chop", "fry", "boil", "bake"}
	out := make([]*core.RecipeModel, n)
	for i := range out {
		out[i] = &core.RecipeModel{
			Title:   "recipe-" + strings.Repeat("x", i%3) + names[i%len(names)],
			Cuisine: []string{"french", "indian", "thai"}[i%3],
			Ingredients: []core.IngredientRecord{
				{Phrase: "2 cups " + names[i%len(names)], Name: names[i%len(names)], Quantity: "2", Unit: "cups"},
				{Phrase: "1 tsp " + names[(i+1)%len(names)], Name: names[(i+1)%len(names)], Quantity: "1", Unit: "tsp", State: "chopped"},
			},
			Instructions: []string{"Step one.", "Step two."},
			Events: []core.Event{
				{Step: 0, Relation: relations.Relation{Process: procs[i%len(procs)]}},
				{Step: 1, Relation: relations.Relation{Process: procs[(i+1)%len(procs)]}},
			},
		}
	}
	return out
}

// noSleep keeps retry drills clock-free.
func noSleep(s *Store) { s.Backoff = resilience.Backoff{Sleep: func(time.Duration) {}} }

func TestBuildLoadRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	noSleep(st)
	models := testModels(17)
	v, err := st.Build(models)
	if err != nil {
		t.Fatal(err)
	}
	if v != "v000001" {
		t.Fatalf("version = %q", v)
	}
	cur, err := st.Current()
	if err != nil || cur != v {
		t.Fatalf("Current() = %q, %v", cur, err)
	}
	snap, err := st.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != v || len(snap.Models) != len(models) {
		t.Fatalf("loaded %d docs of %q", len(snap.Models), snap.Version)
	}
	for i, m := range snap.Models {
		if m.Title != models[i].Title || len(m.Ingredients) != len(models[i].Ingredients) {
			t.Fatalf("doc %d did not round-trip: %+v", i, m)
		}
	}
}

func TestBuildSegments(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	// Spill past one segment boundary so the multi-segment path runs.
	n := segRecords + 3
	v, err := st.Build(testModels(n))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(st.versionDir(v))
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs++
		}
	}
	if segs != 2 {
		t.Fatalf("%d docs produced %d segments, want 2", n, segs)
	}
	snap, err := st.Load(context.Background())
	if err != nil || len(snap.Models) != n {
		t.Fatalf("reload: %d docs, err %v", len(snap.Models), err)
	}
}

func TestBuildRefusesEmpty(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	if _, err := st.Build(nil); err == nil {
		t.Fatal("empty snapshot built without error")
	}
}

func TestVersionsSequence(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	models := testModels(3)
	for i := 0; i < 3; i++ {
		if _, err := st.Build(models); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := st.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[2] != "v000003" {
		t.Fatalf("versions = %v", vs)
	}
	if cur, _ := st.Current(); cur != "v000003" {
		t.Fatalf("CURRENT = %q after three builds", cur)
	}
}

// TestLoadRejectsCorruptSegment pins the integrity error contract: a
// flipped byte is a named-file error carrying both digests.
func TestLoadRejectsCorruptSegment(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v, err := st.Build(testModels(5))
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(st.versionDir(v), "seg-000000.jsonl")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, lerr := st.Load(context.Background())
	if lerr == nil {
		t.Fatal("corrupt segment loaded without error")
	}
	msg := lerr.Error()
	if !strings.Contains(msg, "seg-000000.jsonl") {
		t.Fatalf("error does not name the file: %v", lerr)
	}
	if !strings.Contains(msg, "manifest expects sha256") {
		t.Fatalf("error does not carry expected-vs-found digests: %v", lerr)
	}
}

// TestLoadRejectsTornSegment: a truncated (torn-write) segment is a
// size mismatch naming the file.
func TestLoadRejectsTornSegment(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v, _ := st.Build(testModels(5))
	segPath := filepath.Join(st.versionDir(v), "seg-000000.jsonl")
	data, _ := os.ReadFile(segPath)
	if err := os.WriteFile(segPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, lerr := st.Load(context.Background())
	if lerr == nil || !strings.Contains(lerr.Error(), "manifest expects") {
		t.Fatalf("torn segment: err = %v", lerr)
	}
}

func TestLoadRejectsMissingManifest(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v, _ := st.Build(testModels(3))
	if err := os.Remove(filepath.Join(st.versionDir(v), "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(context.Background()); err == nil {
		t.Fatal("missing manifest loaded without error")
	}
}

func TestLoadRejectsEscapingSegmentName(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v, _ := st.Build(testModels(3))
	manPath := filepath.Join(st.versionDir(v), "MANIFEST.json")
	man, _ := os.ReadFile(manPath)
	evil := strings.Replace(string(man), "seg-000000.jsonl", "../../../etc/passwd", 1)
	if err := os.WriteFile(manPath, []byte(evil), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := st.Load(context.Background())
	if err == nil || !strings.Contains(err.Error(), "invalid segment name") {
		t.Fatalf("escaping segment name: err = %v", err)
	}
}

// TestLoadRetriesTransientFailures: an armed snapshot.load fault with
// a firing limit models a transient I/O failure; the store's backoff
// retries through it without a single real sleep.
func TestLoadRetriesTransientFailures(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	st.Backoff = resilience.Backoff{Attempts: 3, Sleep: func(time.Duration) {}}
	if _, err := st.Build(testModels(4)); err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(FaultLoad, faults.Fault{Err: errors.New("transient read error"), Limit: 2})()
	snap, err := st.Load(context.Background())
	if err != nil {
		t.Fatalf("load did not retry through transient failures: %v", err)
	}
	if len(snap.Models) != 4 {
		t.Fatalf("loaded %d docs", len(snap.Models))
	}
	if got := faults.Hits(FaultLoad); got != 3 {
		t.Fatalf("load attempts = %d, want 3 (two failures + one success)", got)
	}
}

// TestLoadExhaustsRetries: a persistent failure comes back joined with
// the injected cause after the attempt budget.
func TestLoadExhaustsRetries(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	st.Backoff = resilience.Backoff{Attempts: 2, Sleep: func(time.Duration) {}}
	if _, err := st.Build(testModels(2)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	defer faults.Enable(FaultLoad, faults.Fault{Err: boom})()
	if _, err := st.Load(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected cause", err)
	}
	if got := faults.Hits(FaultLoad); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

// TestLoadLatestGoodFallsBack is the rollback acceptance check: when
// CURRENT names a corrupt snapshot, the store serves the newest
// version that checks out and reports why the bad one was rejected.
func TestLoadLatestGoodFallsBack(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	if _, err := st.Build(testModels(6)); err != nil { // v000001, good
		t.Fatal(err)
	}
	v2, err := st.Build(testModels(9)) // v000002, about to be torn
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(st.versionDir(v2), "seg-000000.jsonl")
	data, _ := os.ReadFile(segPath)
	if err := os.WriteFile(segPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, rejected, err := st.LoadLatestGood(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != "v000001" || len(snap.Models) != 6 {
		t.Fatalf("fell back to %q with %d docs, want v000001 with 6", snap.Version, len(snap.Models))
	}
	if len(rejected) != 1 || !strings.Contains(rejected[0].Error(), v2) {
		t.Fatalf("rejected = %v, want one entry naming %s", rejected, v2)
	}
}

// TestLoadLatestGoodAllBad: with every version corrupt the error says
// so instead of inventing a corpus.
func TestLoadLatestGoodAllBad(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v, _ := st.Build(testModels(3))
	if err := os.Remove(filepath.Join(st.versionDir(v), "seg-000000.jsonl")); err != nil {
		t.Fatal(err)
	}
	_, rejected, err := st.LoadLatestGood(context.Background())
	if err == nil {
		t.Fatal("no loadable version, yet no error")
	}
	if len(rejected) != 1 {
		t.Fatalf("rejected = %v", rejected)
	}
}

// TestRollbackViaSetCurrent: the rollback primitive is pointing
// CURRENT back at an older version.
func TestRollbackViaSetCurrent(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	v1, _ := st.Build(testModels(2))
	if _, err := st.Build(testModels(4)); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCurrent(v1); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(context.Background())
	if err != nil || snap.Version != v1 || len(snap.Models) != 2 {
		t.Fatalf("rollback load: %v %q %d", err, snap.Version, len(snap.Models))
	}
	if err := st.SetCurrent("v999999"); err == nil {
		t.Fatal("SetCurrent accepted an uninstalled version")
	}
}

// TestInterruptedInstallLeavesNoVersion: a temp install directory left
// by a crash is invisible to Versions and to loaders.
func TestInterruptedInstallLeavesNoVersion(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	noSleep(st)
	if _, err := st.Build(testModels(2)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-install: the hidden temp directory exists
	// but was never renamed into place.
	if err := os.MkdirAll(filepath.Join(st.snapshotsDir(), ".install-v000002"), 0o755); err != nil {
		t.Fatal(err)
	}
	vs, err := st.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("versions = %v, temp install dir leaked in", vs)
	}
	// The next build reclaims the orphaned temp dir and installs cleanly.
	v, err := st.Build(testModels(3))
	if err != nil || v != "v000002" {
		t.Fatalf("rebuild over orphan: %q %v", v, err)
	}
}
