// Package stopwords provides the English stop-word list used during
// pre-processing of ingredient phrases and instructions, mirroring the
// NLTK stop-word corpus the paper relies on.
//
// A handful of words that NLTK lists as stop words carry meaning in
// recipe text ("to" in "bring to a boil" is still droppable, but "not"
// flips dryness/freshness judgments), so the package also exposes a
// recipe-safe variant that retains negations.
package stopwords

import "strings"

// nltkList is the classic NLTK English stop-word list.
var nltkList = []string{
	"i", "me", "my", "myself", "we", "our", "ours", "ourselves", "you",
	"you're", "you've", "you'll", "you'd", "your", "yours", "yourself",
	"yourselves", "he", "him", "his", "himself", "she", "she's", "her",
	"hers", "herself", "it", "it's", "its", "itself", "they", "them",
	"their", "theirs", "themselves", "what", "which", "who", "whom",
	"this", "that", "that'll", "these", "those", "am", "is", "are",
	"was", "were", "be", "been", "being", "have", "has", "had",
	"having", "do", "does", "did", "doing", "a", "an", "the", "and",
	"but", "if", "or", "because", "as", "until", "while", "of", "at",
	"by", "for", "with", "about", "against", "between", "into",
	"through", "during", "before", "after", "above", "below", "to",
	"from", "up", "down", "in", "out", "on", "off", "over", "under",
	"again", "further", "then", "once", "here", "there", "when",
	"where", "why", "how", "all", "any", "both", "each", "few", "more",
	"most", "other", "some", "such", "no", "nor", "not", "only", "own",
	"same", "so", "than", "too", "very", "s", "t", "can", "will",
	"just", "don", "don't", "should", "should've", "now", "d", "ll",
	"m", "o", "re", "ve", "y", "ain", "aren", "aren't", "couldn",
	"couldn't", "didn", "didn't", "doesn", "doesn't", "hadn", "hadn't",
	"hasn", "hasn't", "haven", "haven't", "isn", "isn't", "ma",
	"mightn", "mightn't", "mustn", "mustn't", "needn", "needn't",
	"shan", "shan't", "shouldn", "shouldn't", "wasn", "wasn't",
	"weren", "weren't", "won", "won't", "wouldn", "wouldn't",
}

// negations that the recipe-safe set keeps (dry "not fresh", etc.).
var negations = map[string]bool{
	"no": true, "nor": true, "not": true, "don't": true, "won't": true,
}

// Set is an immutable stop-word set.
type Set struct {
	words map[string]bool
}

// NLTK returns the full NLTK English stop-word set.
func NLTK() *Set {
	return buildSet(nil)
}

// RecipeSafe returns the NLTK set minus negation words, which carry
// attribute information in ingredient phrases.
func RecipeSafe() *Set {
	return buildSet(negations)
}

func buildSet(keep map[string]bool) *Set {
	m := make(map[string]bool, len(nltkList))
	for _, w := range nltkList {
		if keep[w] {
			continue
		}
		m[w] = true
	}
	return &Set{words: m}
}

// Contains reports whether w (case-insensitively) is a stop word.
func (s *Set) Contains(w string) bool {
	return s.words[strings.ToLower(w)]
}

// Len returns the number of stop words in the set.
func (s *Set) Len() int { return len(s.words) }

// Filter returns the subsequence of words that are not stop words.
// The input slice is not modified.
func (s *Set) Filter(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !s.Contains(w) {
			out = append(out, w)
		}
	}
	return out
}

// Mask returns a boolean slice aligned with words where true marks a
// stop word. Useful when downstream consumers must keep token
// alignment (e.g. sequence taggers that skip rather than delete).
func (s *Set) Mask(words []string) []bool {
	out := make([]bool, len(words))
	for i, w := range words {
		out[i] = s.Contains(w)
	}
	return out
}
