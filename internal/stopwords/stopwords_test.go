package stopwords

import "testing"

func TestNLTKContains(t *testing.T) {
	s := NLTK()
	for _, w := range []string{"the", "of", "and", "not", "The", "AND"} {
		if !s.Contains(w) {
			t.Errorf("NLTK should contain %q", w)
		}
	}
	for _, w := range []string{"tomato", "boil", "cup", ""} {
		if s.Contains(w) {
			t.Errorf("NLTK should not contain %q", w)
		}
	}
}

func TestRecipeSafeKeepsNegations(t *testing.T) {
	s := RecipeSafe()
	for _, w := range []string{"not", "no", "nor"} {
		if s.Contains(w) {
			t.Errorf("RecipeSafe should not treat %q as a stop word", w)
		}
	}
	if !s.Contains("the") {
		t.Error("RecipeSafe should still contain \"the\"")
	}
	if s.Len() >= NLTK().Len() {
		t.Error("RecipeSafe should be strictly smaller than NLTK")
	}
}

func TestFilter(t *testing.T) {
	s := NLTK()
	got := s.Filter([]string{"bring", "the", "water", "to", "a", "boil"})
	want := []string{"bring", "water", "boil"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestFilterDoesNotMutate(t *testing.T) {
	in := []string{"the", "salt"}
	_ = NLTK().Filter(in)
	if in[0] != "the" || in[1] != "salt" {
		t.Fatal("Filter mutated its input")
	}
}

func TestMaskAlignment(t *testing.T) {
	s := NLTK()
	words := []string{"add", "the", "chopped", "onion"}
	mask := s.Mask(words)
	if len(mask) != len(words) {
		t.Fatalf("mask length %d != %d", len(mask), len(words))
	}
	want := []bool{false, true, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestSetsAreIndependent(t *testing.T) {
	a := NLTK()
	b := NLTK()
	if a.Len() != b.Len() {
		t.Fatal("two NLTK sets differ")
	}
}
