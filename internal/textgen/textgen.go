// Package textgen composes novel recipes from a knowledge graph of
// mined recipe models — the "generation of novel recipes" application
// of §IV-§V. Ingredients are grown from the pairing graph, the
// technique sequence is a random walk over the temporal process
// bigrams, and each step's arguments are sampled from the process's
// observed argument distribution; the result is rendered as recipe
// text.
package textgen

import (
	"fmt"
	"math/rand"
	"strings"

	"recipemodel/internal/graph"
)

// Config bounds the composition.
type Config struct {
	Ingredients int // target ingredient count (default 5)
	Steps       int // target step count (default 5)
}

// Recipe is a generated novel recipe.
type Recipe struct {
	Title       string
	Ingredients []string
	Steps       []Step
}

// Step is one generated instruction.
type Step struct {
	Process     string
	Ingredients []string
	Utensil     string
}

// Text renders the step as an imperative sentence.
func (s Step) Text() string {
	var b strings.Builder
	b.WriteString(capitalize(s.Process))
	if len(s.Ingredients) > 0 {
		b.WriteString(" the ")
		b.WriteString(joinAnd(s.Ingredients))
	}
	if s.Utensil != "" {
		b.WriteString(" in the ")
		b.WriteString(s.Utensil)
	}
	b.WriteString(".")
	return b.String()
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func joinAnd(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	default:
		return strings.Join(items[:len(items)-1], ", ") + " and " + items[len(items)-1]
	}
}

// Text renders the whole recipe.
func (r Recipe) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\nIngredients:\n", r.Title)
	for _, ing := range r.Ingredients {
		fmt.Fprintf(&b, "  - %s\n", ing)
	}
	b.WriteString("\nInstructions:\n")
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "  %d. %s\n", i+1, s.Text())
	}
	return b.String()
}

// Compose generates a novel recipe from the graph, seeded by an
// ingredient (empty = the graph's most common ingredient).
func Compose(g *graph.Graph, seed string, cfg Config, rng *rand.Rand) (Recipe, error) {
	if cfg.Ingredients <= 0 {
		cfg.Ingredients = 5
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 5
	}
	if seed == "" {
		top := g.TopNodes(graph.Ingredient, 1)
		if len(top) == 0 {
			return Recipe{}, fmt.Errorf("textgen: empty graph")
		}
		seed = top[0].Node.Name
	}

	// 1. grow the ingredient set along the pairing graph.
	ingredients := []string{seed}
	inSet := map[string]bool{seed: true}
	frontier := seed
	for len(ingredients) < cfg.Ingredients {
		pair := g.Pairings(frontier, 8)
		var next string
		for _, cand := range weightedShuffle(pair, rng) {
			if !inSet[cand] {
				next = cand
				break
			}
		}
		if next == "" {
			// dead end: fall back to the global top list.
			for _, w := range g.TopNodes(graph.Ingredient, 20) {
				if !inSet[w.Node.Name] {
					next = w.Node.Name
					break
				}
			}
		}
		if next == "" {
			break
		}
		ingredients = append(ingredients, next)
		inSet[next] = true
		frontier = next
	}

	// 2. random-walk the process bigrams.
	procs := walkProcesses(g, cfg.Steps, rng)
	if len(procs) == 0 {
		return Recipe{}, fmt.Errorf("textgen: graph has no processes")
	}

	// 3. attach arguments per step.
	r := Recipe{
		Title:       fmt.Sprintf("%s with %s", capitalize(seed), joinAnd(ingredients[1:min(3, len(ingredients))])),
		Ingredients: ingredients,
	}
	remaining := append([]string(nil), ingredients...)
	for i, p := range procs {
		step := Step{Process: p}
		// prefer arguments the process is actually applied to.
		known := map[string]bool{}
		var utensil string
		for _, w := range g.ArgumentsOf(p, 12) {
			if w.Node.Kind == graph.Utensil && utensil == "" {
				utensil = w.Node.Name
			}
			if w.Node.Kind == graph.Ingredient {
				known[w.Node.Name] = true
			}
		}
		take := 1 + rng.Intn(2)
		for _, ing := range remaining {
			if len(step.Ingredients) == take {
				break
			}
			if known[ing] || rng.Float64() < 0.3 {
				step.Ingredients = append(step.Ingredients, ing)
			}
		}
		// ensure every ingredient is used at least once by the end.
		if i == len(procs)-1 && len(step.Ingredients) == 0 && len(remaining) > 0 {
			step.Ingredients = append(step.Ingredients, remaining[0])
		}
		if rng.Float64() < 0.7 {
			step.Utensil = utensil
		}
		r.Steps = append(r.Steps, step)
	}
	return r, nil
}

// walkProcesses samples a plausible technique sequence.
func walkProcesses(g *graph.Graph, n int, rng *rand.Rand) []string {
	top := g.TopNodes(graph.Process, 10)
	if len(top) == 0 {
		return nil
	}
	cur := top[rng.Intn(len(top))].Node.Name
	out := []string{cur}
	for len(out) < n {
		next := g.NextProcesses(cur, 6)
		var cand string
		for _, c := range weightedShuffle(toWeightedNames(next), rng) {
			if c != cur {
				cand = c
				break
			}
		}
		if cand == "" {
			cand = top[rng.Intn(len(top))].Node.Name
			if cand == cur {
				continue
			}
		}
		out = append(out, cand)
		cur = cand
	}
	return out
}

func toWeightedNames(ws []graph.Weighted) []graph.Weighted { return ws }

// weightedShuffle orders candidate names by count-weighted sampling
// without replacement.
func weightedShuffle(ws []graph.Weighted, rng *rand.Rand) []string {
	pool := append([]graph.Weighted(nil), ws...)
	out := make([]string, 0, len(pool))
	for len(pool) > 0 {
		total := 0
		for _, w := range pool {
			total += w.Count
		}
		if total <= 0 {
			for _, w := range pool {
				out = append(out, w.Node.Name)
			}
			break
		}
		target := rng.Intn(total)
		acc := 0
		pick := len(pool) - 1
		for i, w := range pool {
			acc += w.Count
			if acc > target {
				pick = i
				break
			}
		}
		out = append(out, pool[pick].Node.Name)
		pool = append(pool[:pick], pool[pick+1:]...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
