package textgen

import (
	"math/rand"
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/graph"
	"recipemodel/internal/relations"
)

// seededGraph builds a small but connected knowledge graph.
func seededGraph() *graph.Graph {
	g := graph.New()
	mk := func(ings []string, steps ...relations.Relation) *core.RecipeModel {
		m := &core.RecipeModel{}
		for _, n := range ings {
			m.Ingredients = append(m.Ingredients, core.IngredientRecord{Name: n})
		}
		for i, r := range steps {
			m.Events = append(m.Events, core.Event{Step: i, Relation: r})
		}
		return m
	}
	arg := func(names ...string) []relations.Argument {
		var out []relations.Argument
		for _, n := range names {
			out = append(out, relations.Argument{Text: n})
		}
		return out
	}
	for i := 0; i < 5; i++ {
		g.AddRecipe(mk([]string{"pasta", "tomato", "basil"},
			relations.Relation{Process: "boil", Ingredients: arg("pasta"), Utensils: arg("pot")},
			relations.Relation{Process: "chop", Ingredients: arg("tomato", "basil")},
			relations.Relation{Process: "toss", Ingredients: arg("pasta", "tomato")},
			relations.Relation{Process: "serve"},
		))
		g.AddRecipe(mk([]string{"tomato", "onion", "garlic"},
			relations.Relation{Process: "chop", Ingredients: arg("onion", "garlic")},
			relations.Relation{Process: "fry", Ingredients: arg("onion"), Utensils: arg("pan")},
			relations.Relation{Process: "add", Ingredients: arg("tomato")},
			relations.Relation{Process: "serve"},
		))
	}
	return g
}

func TestComposeBasic(t *testing.T) {
	g := seededGraph()
	r, err := Compose(g, "tomato", Config{Ingredients: 4, Steps: 5}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ingredients) < 2 || r.Ingredients[0] != "tomato" {
		t.Fatalf("ingredients = %v", r.Ingredients)
	}
	if len(r.Steps) != 5 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	for _, s := range r.Steps {
		if s.Process == "" {
			t.Fatal("step without process")
		}
	}
	text := r.Text()
	if !strings.Contains(text, "Ingredients:") || !strings.Contains(text, "Instructions:") {
		t.Fatalf("render:\n%s", text)
	}
}

func TestComposeDefaultSeed(t *testing.T) {
	g := seededGraph()
	r, err := Compose(g, "", Config{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// default seed is the most frequent ingredient: tomato (10 recipes).
	if r.Ingredients[0] != "tomato" {
		t.Fatalf("seed = %q", r.Ingredients[0])
	}
}

func TestComposeEmptyGraph(t *testing.T) {
	if _, err := Compose(graph.New(), "", Config{}, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("expected error on empty graph")
	}
}

func TestComposeDeterministic(t *testing.T) {
	g := seededGraph()
	a, _ := Compose(g, "pasta", Config{Steps: 4}, rand.New(rand.NewSource(7)))
	b, _ := Compose(g, "pasta", Config{Steps: 4}, rand.New(rand.NewSource(7)))
	if a.Text() != b.Text() {
		t.Fatal("same seed should reproduce the recipe")
	}
}

func TestProcessWalkFollowsBigrams(t *testing.T) {
	g := seededGraph()
	// chop → {toss, fry, add} in the corpus; a long walk from the graph
	// should only ever use processes the graph knows.
	known := map[string]bool{}
	for _, w := range g.TopNodes(graph.Process, 100) {
		known[w.Node.Name] = true
	}
	r, err := Compose(g, "tomato", Config{Steps: 8}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Steps {
		if !known[s.Process] {
			t.Fatalf("unknown process %q", s.Process)
		}
	}
}

func TestStepText(t *testing.T) {
	s := Step{Process: "toss", Ingredients: []string{"pasta", "tomato"}, Utensil: "pan"}
	if got := s.Text(); got != "Toss the pasta and tomato in the pan." {
		t.Fatalf("got %q", got)
	}
	s = Step{Process: "serve"}
	if got := s.Text(); got != "Serve." {
		t.Fatalf("got %q", got)
	}
}
