package tokenize

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize checks the tokenizer's core invariants on arbitrary
// input: no panics, exact offsets, and in-bounds spans.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"1 1/2 cups sugar",
		"1 (8 ounce) package cream cheese, softened",
		"½ cup crème fraîche",
		"Bring the water to a boil. Serve!",
		"2-3 medium tomatoes",
		"°°°((()))",
		"\x80\xffinvalid utf8",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				t.Fatalf("bad span [%d,%d) after %d in %q", tok.Start, tok.End, prev, s)
			}
			if s[tok.Start:tok.End] != tok.Text {
				t.Fatalf("offset mismatch in %q", s)
			}
			prev = tok.End
		}
		// Normalize must return valid UTF-8 for valid input.
		if utf8.ValidString(s) {
			for _, tok := range toks {
				if !utf8.ValidString(Normalize(tok.Text)) {
					t.Fatalf("Normalize produced invalid UTF-8 for %q", tok.Text)
				}
			}
		}
		// sentence splitting must cover without panicking.
		_ = SplitSentences(s)
	})
}
