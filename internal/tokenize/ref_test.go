package tokenize

import (
	"math/rand"
	"strings"
	"testing"
	"unicode"
)

// tokenizeRef is the original rune-index implementation of Tokenize,
// kept verbatim as the differential reference for the byte-offset
// rewrite.
func tokenizeRef(text string) []Token {
	var toks []Token
	runes := make([]rune, 0, len(text))
	byteAt := make([]int, 0, len(text)+1)
	for i, r := range text {
		runes = append(runes, r)
		byteAt = append(byteAt, i)
	}
	byteAt = append(byteAt, len(text))

	emit := func(i, j int, k Kind) {
		toks = append(toks, Token{
			Text:  text[byteAt[i]:byteAt[j]],
			Start: byteAt[i],
			End:   byteAt[j],
			Kind:  k,
		})
	}

	i := 0
	n := len(runes)
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isDigitRune(r):
			j := scanNumberRef(runes, i)
			emit(i, j, Number)
			i = j
		case IsVulgarFraction(r):
			emit(i, i+1, Number)
			i++
		case unicode.IsLetter(r):
			j := scanWordRef(runes, i)
			emit(i, j, Word)
			i = j
		case r == '(' || r == '[' || r == '{':
			emit(i, i+1, Open)
			i++
		case r == ')' || r == ']' || r == '}':
			emit(i, i+1, Close)
			i++
		case r == '%' || r == '°' || r == '&' || r == '+' || r == '*' || r == '#' || r == '@' || r == '$' || r == '=' || r == '<' || r == '>':
			emit(i, i+1, Symbol)
			i++
		default:
			emit(i, i+1, Punct)
			i++
		}
	}
	return toks
}

func scanNumberRef(runes []rune, i int) int {
	n := len(runes)
	j := i
	digits := func(j int) int {
		for j < n && isDigitRune(runes[j]) {
			j++
		}
		return j
	}
	j = digits(j)
	if j < n && (runes[j] == '.' || runes[j] == ',') && j+1 < n && isDigitRune(runes[j+1]) {
		j = digits(j + 2)
	}
	if j < n && runes[j] == '/' && j+1 < n && isDigitRune(runes[j+1]) {
		j = digits(j + 2)
	}
	if j < n && (runes[j] == '-' || runes[j] == '–') && j+1 < n && isDigitRune(runes[j+1]) {
		k := digits(j + 2)
		if k < n && runes[k] == '/' && k+1 < n && isDigitRune(runes[k+1]) {
			k = digits(k + 2)
		}
		j = k
	}
	if j+1 < n && runes[j] == ' ' && isDigitRune(runes[j+1]) {
		k := digits(j + 1)
		if k < n && runes[k] == '/' && k+1 < n && isDigitRune(runes[k+1]) {
			j = digits(k + 2)
		}
	}
	if j < n && IsVulgarFraction(runes[j]) {
		j++
	}
	return j
}

func scanWordRef(runes []rune, i int) int {
	n := len(runes)
	j := i
	for j < n {
		r := runes[j]
		if unicode.IsLetter(r) || isDigitRune(r) {
			j++
			continue
		}
		if (r == '-' || r == '\'') && j+1 < n && isWordRune(runes[j+1]) && j > i {
			j++
			continue
		}
		break
	}
	return j
}

func sameTokens(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTokenizeMatchesReference pins the byte-offset rewrite against
// the rune-index reference on curated edge cases.
func TestTokenizeMatchesReference(t *testing.T) {
	cases := []string{
		"",
		"1 (8 ounce) package cream cheese, softened",
		"1 1/2 cups all-purpose flour",
		"2-4 cloves garlic, minced",
		"1-1/2 tsp. vanilla",
		"½ cup sugar or 1½ cups",
		"2.5 kg; 3,5 l",
		"don't over-mix the half-and-half",
		"350° for 20 min. then broil",
		"1 ",
		"1 2",
		"1 2/3",
		"3/",
		"2-",
		"2- 4",
		"9½",
		"sauté über jalapeño",
		"bad \xff byte \xfe\x00 soup",
		"a\xffb 1\xff2",
		"x-\xff y'\xff",
		"trailing hyphen- and quote'",
		"100%(*)[ok]{no}<>=+&#@$",
		"١٢٣ arabic digits", // non-ASCII digits exercise multibyte digit runes
		"mixed ١/٢ fraction",
		"1 ١/٢",
	}
	for _, text := range cases {
		got := Tokenize(text)
		want := tokenizeRef(text)
		if !sameTokens(got, want) {
			t.Errorf("Tokenize(%q):\n got %v\nwant %v", text, got, want)
		}
	}
}

// TestTokenizeRandomizedDifferential throws random byte soup —
// weighted toward the tokenizer's special characters — at both
// implementations.
func TestTokenizeRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := []string{
		"1", "2", "9", "0", "a", "z", "A", " ", "  ", "-", "–", "/", ".", ",",
		"'", "(", ")", "[", "]", "½", "⅞", "°", "%", "é", "ü", "\xff", "\xc3",
		"\x00", "word", "12", "1/2", "\t", "\n",
	}
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := rng.Intn(20)
		for k := 0; k < n; k++ {
			b.WriteString(alphabet[rng.Intn(len(alphabet))])
		}
		text := b.String()
		got := Tokenize(text)
		want := tokenizeRef(text)
		if !sameTokens(got, want) {
			t.Fatalf("trial %d: Tokenize(%q):\n got %v\nwant %v", trial, text, got, want)
		}
	}
}

// FuzzTokenizeDifferential is the continuous form of the differential
// test, seeded with the curated edge cases.
func FuzzTokenizeDifferential(f *testing.F) {
	for _, s := range []string{
		"1 1/2 cups flour", "2-4 eggs", "½x", "1½", "a\xffb", "don't",
		"(8 ounce)", "1 ١/٢", "9- ", "1. 2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		got := Tokenize(text)
		want := tokenizeRef(text)
		if !sameTokens(got, want) {
			t.Fatalf("Tokenize(%q):\n got %v\nwant %v", text, got, want)
		}
		// offsets must exactly tile the input
		for _, tok := range got {
			if tok.Start < 0 || tok.End > len(text) || text[tok.Start:tok.End] != tok.Text {
				t.Fatalf("bad offsets in %v for %q", tok, text)
			}
		}
	})
}

func TestAppendToReusesBuffer(t *testing.T) {
	buf := make([]Token, 0, 32)
	out := AppendTo(buf[:0], "1 cup sugar")
	if len(out) != 3 || cap(out) != 32 {
		t.Fatalf("AppendTo did not reuse buffer: len %d cap %d", len(out), cap(out))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendTo(buf[:0], "2 cups chopped fresh basil")
	})
	if allocs != 0 {
		t.Fatalf("AppendTo allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := "1 (8 ounce) package cream cheese, softened to 1 1/2 cups"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkAppendTo(b *testing.B) {
	text := "1 (8 ounce) package cream cheese, softened to 1 1/2 cups"
	buf := make([]Token, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTo(buf[:0], text)
	}
}
