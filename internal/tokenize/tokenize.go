// Package tokenize provides a rune-accurate tokenizer and sentence
// splitter tuned for recipe text: ingredient phrases ("1 (8 ounce)
// package cream cheese, softened") and imperative instructions
// ("Bring water to a boil in a large pot.").
//
// The tokenizer preserves byte offsets so downstream annotations can
// always be mapped back onto the original text, and it keeps numeric
// constructs that matter to recipes — mixed fractions ("1 1/2"),
// ranges ("2-4"), and unicode vulgar fractions ("½") — as single
// tokens where the lexical convention warrants it.
package tokenize

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit with its position in the source text.
type Token struct {
	// Text is the token surface form, exactly as it appears in the input.
	Text string
	// Start and End are byte offsets into the original string such that
	// input[Start:End] == Text.
	Start int
	End   int
	// Kind classifies the token's lexical category.
	Kind Kind
}

// Kind is the lexical category of a token.
type Kind int

// Lexical categories produced by the tokenizer.
const (
	Word   Kind = iota // alphabetic word, possibly with internal hyphens/apostrophes
	Number             // integer, decimal, fraction, mixed number, or numeric range
	Punct              // punctuation mark
	Open               // opening bracket: ( [ {
	Close              // closing bracket: ) ] }
	Symbol             // other symbols (%, °, etc.)
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "WORD"
	case Number:
		return "NUMBER"
	case Punct:
		return "PUNCT"
	case Open:
		return "OPEN"
	case Close:
		return "CLOSE"
	case Symbol:
		return "SYMBOL"
	default:
		return "UNKNOWN"
	}
}

// vulgar fractions map to their ASCII expansions when Normalize is used.
var vulgarFractions = map[rune]string{
	'½': "1/2", '⅓': "1/3", '⅔': "2/3",
	'¼': "1/4", '¾': "3/4", '⅕': "1/5",
	'⅖': "2/5", '⅗': "3/5", '⅘': "4/5",
	'⅙': "1/6", '⅚': "5/6", '⅛': "1/8",
	'⅜': "3/8", '⅝': "5/8", '⅞': "7/8",
}

// IsVulgarFraction reports whether r is a unicode vulgar fraction rune.
func IsVulgarFraction(r rune) bool {
	_, ok := vulgarFractions[r]
	return ok
}

// ExpandVulgar returns the ASCII "a/b" expansion for a vulgar fraction
// rune, and ok=false if r is not one.
func ExpandVulgar(r rune) (string, bool) {
	s, ok := vulgarFractions[r]
	return s, ok
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || r == '\'' || IsVulgarFraction(r)
}

func isDigitRune(r rune) bool {
	return unicode.IsDigit(r)
}

// Tokenize splits text into tokens. The concatenation of token texts
// with the original gaps restored always reproduces the input
// (offsets are exact).
func Tokenize(text string) []Token {
	var toks []Token
	// Decode via string range so byte offsets stay exact even for
	// invalid UTF-8 (a bad byte decodes to U+FFFD but consumes exactly
	// one input byte, which []rune arithmetic would miscount).
	runes := make([]rune, 0, len(text))
	byteAt := make([]int, 0, len(text)+1)
	for i, r := range text {
		runes = append(runes, r)
		byteAt = append(byteAt, i)
	}
	byteAt = append(byteAt, len(text))

	emit := func(i, j int, k Kind) {
		toks = append(toks, Token{
			// slice the original text so invalid bytes round-trip exactly.
			Text:  text[byteAt[i]:byteAt[j]],
			Start: byteAt[i],
			End:   byteAt[j],
			Kind:  k,
		})
	}

	i := 0
	n := len(runes)
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isDigitRune(r):
			j := scanNumber(runes, i)
			emit(i, j, Number)
			i = j
		case IsVulgarFraction(r):
			emit(i, i+1, Number)
			i++
		case unicode.IsLetter(r):
			j := scanWord(runes, i)
			emit(i, j, Word)
			i = j
		case r == '(' || r == '[' || r == '{':
			emit(i, i+1, Open)
			i++
		case r == ')' || r == ']' || r == '}':
			emit(i, i+1, Close)
			i++
		case r == '%' || r == '°' || r == '&' || r == '+' || r == '*' || r == '#' || r == '@' || r == '$' || r == '=' || r == '<' || r == '>':
			emit(i, i+1, Symbol)
			i++
		default:
			emit(i, i+1, Punct)
			i++
		}
	}
	return toks
}

// scanNumber consumes a numeric token starting at i: digits with
// optional decimal point, fraction slash, range hyphen, or a trailing
// mixed fraction ("1 1/2" is consumed as one token only when joined by
// a space and a fraction follows).
func scanNumber(runes []rune, i int) int {
	n := len(runes)
	j := i
	digits := func(j int) int {
		for j < n && isDigitRune(runes[j]) {
			j++
		}
		return j
	}
	j = digits(j)
	// decimal part
	if j < n && (runes[j] == '.' || runes[j] == ',') && j+1 < n && isDigitRune(runes[j+1]) {
		j = digits(j + 2)
	}
	// fraction part: "3/4"
	if j < n && runes[j] == '/' && j+1 < n && isDigitRune(runes[j+1]) {
		j = digits(j + 2)
	}
	// range part: "2-4", "2 - 4" is NOT merged (hyphen must be tight)
	if j < n && (runes[j] == '-' || runes[j] == '–') && j+1 < n && isDigitRune(runes[j+1]) {
		k := digits(j + 2)
		// possible fraction in upper bound "1-1/2"
		if k < n && runes[k] == '/' && k+1 < n && isDigitRune(runes[k+1]) {
			k = digits(k + 2)
		}
		j = k
	}
	// mixed number: "1 1/2" — single space, then a pure fraction
	if j+1 < n && runes[j] == ' ' && isDigitRune(runes[j+1]) {
		k := digits(j + 1)
		if k < n && runes[k] == '/' && k+1 < n && isDigitRune(runes[k+1]) {
			j = digits(k + 2)
		}
	}
	// attached vulgar fraction: "1½"
	if j < n && IsVulgarFraction(runes[j]) {
		j++
	}
	return j
}

// scanWord consumes a word, allowing internal hyphens and apostrophes
// between letters ("half-and-half", "don't") but stopping at other
// punctuation.
func scanWord(runes []rune, i int) int {
	n := len(runes)
	j := i
	for j < n {
		r := runes[j]
		if unicode.IsLetter(r) || isDigitRune(r) {
			j++
			continue
		}
		if (r == '-' || r == '\'') && j+1 < n && isWordRune(runes[j+1]) && j > i {
			j++
			continue
		}
		break
	}
	return j
}

// Words returns only the token surface forms.
func Words(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// SplitSentences splits text into sentences on '.', '!', '?' and
// ';' boundaries, respecting common abbreviations and decimal points.
// Recipe instruction sections are typically sequences of short
// imperative sentences, so a light-weight rule splitter suffices.
func SplitSentences(text string) []string {
	var out []string
	runes := []rune(text)
	n := len(runes)
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(string(runes[start:end]))
		if s != "" {
			out = append(out, s)
		}
		start = end
	}
	for i := 0; i < n; i++ {
		r := runes[i]
		if r == '\n' {
			flush(i)
			start = i + 1
			continue
		}
		if r == '!' || r == '?' || r == ';' {
			flush(i + 1)
			continue
		}
		if r == '.' {
			// decimal point inside a number: don't split.
			if i > 0 && isDigitRune(runes[i-1]) && i+1 < n && isDigitRune(runes[i+1]) {
				continue
			}
			// abbreviation like "approx." followed by lowercase: don't split.
			if i+2 < n && runes[i+1] == ' ' && unicode.IsLower(runes[i+2]) && isAbbreviation(runes, i) {
				continue
			}
			flush(i + 1)
		}
	}
	flush(n)
	return out
}

// isAbbreviation inspects the word ending at the period at index i.
func isAbbreviation(runes []rune, i int) bool {
	j := i
	for j > 0 && unicode.IsLetter(runes[j-1]) {
		j--
	}
	w := strings.ToLower(string(runes[j:i]))
	switch w {
	case "approx", "etc", "min", "hr", "hrs", "tbsp", "tsp", "oz", "lb", "pkg", "no", "vs", "eg", "ie":
		return true
	}
	return false
}

// Normalize lower-cases a token and expands unicode vulgar fractions;
// it is the canonical surface-form normalization used across the
// pipeline (the paper lower-cases during pre-processing).
func Normalize(tok string) string {
	var b strings.Builder
	for _, r := range tok {
		if exp, ok := vulgarFractions[r]; ok {
			b.WriteString(exp)
			continue
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
