// Package tokenize provides a rune-accurate tokenizer and sentence
// splitter tuned for recipe text: ingredient phrases ("1 (8 ounce)
// package cream cheese, softened") and imperative instructions
// ("Bring water to a boil in a large pot.").
//
// The tokenizer preserves byte offsets so downstream annotations can
// always be mapped back onto the original text, and it keeps numeric
// constructs that matter to recipes — mixed fractions ("1 1/2"),
// ranges ("2-4"), and unicode vulgar fractions ("½") — as single
// tokens where the lexical convention warrants it.
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical unit with its position in the source text.
type Token struct {
	// Text is the token surface form, exactly as it appears in the input.
	Text string
	// Start and End are byte offsets into the original string such that
	// input[Start:End] == Text.
	Start int
	End   int
	// Kind classifies the token's lexical category.
	Kind Kind
}

// Kind is the lexical category of a token.
type Kind int

// Lexical categories produced by the tokenizer.
const (
	Word   Kind = iota // alphabetic word, possibly with internal hyphens/apostrophes
	Number             // integer, decimal, fraction, mixed number, or numeric range
	Punct              // punctuation mark
	Open               // opening bracket: ( [ {
	Close              // closing bracket: ) ] }
	Symbol             // other symbols (%, °, etc.)
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "WORD"
	case Number:
		return "NUMBER"
	case Punct:
		return "PUNCT"
	case Open:
		return "OPEN"
	case Close:
		return "CLOSE"
	case Symbol:
		return "SYMBOL"
	default:
		return "UNKNOWN"
	}
}

// vulgar fractions map to their ASCII expansions when Normalize is used.
var vulgarFractions = map[rune]string{
	'½': "1/2", '⅓': "1/3", '⅔': "2/3",
	'¼': "1/4", '¾': "3/4", '⅕': "1/5",
	'⅖': "2/5", '⅗': "3/5", '⅘': "4/5",
	'⅙': "1/6", '⅚': "5/6", '⅛': "1/8",
	'⅜': "3/8", '⅝': "5/8", '⅞': "7/8",
}

// IsVulgarFraction reports whether r is a unicode vulgar fraction rune.
func IsVulgarFraction(r rune) bool {
	_, ok := vulgarFractions[r]
	return ok
}

// ExpandVulgar returns the ASCII "a/b" expansion for a vulgar fraction
// rune, and ok=false if r is not one.
func ExpandVulgar(r rune) (string, bool) {
	s, ok := vulgarFractions[r]
	return s, ok
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || r == '\'' || IsVulgarFraction(r)
}

func isDigitRune(r rune) bool {
	return unicode.IsDigit(r)
}

// Tokenize splits text into tokens. The concatenation of token texts
// with the original gaps restored always reproduces the input
// (offsets are exact).
func Tokenize(text string) []Token {
	return AppendTo(nil, text)
}

// AppendTo is Tokenize appending into a caller-owned slice, the
// allocation-free form for hot loops that reuse a token buffer. The
// scan works on byte offsets directly (utf8.DecodeRuneInString mirrors
// string-range semantics: an invalid byte decodes to U+FFFD and
// consumes exactly one byte), so no per-call rune or offset slices are
// built. Differential tests against the rune-index reference
// implementation pin the equivalence.
func AppendTo(toks []Token, text string) []Token {
	i := 0
	n := len(text)
	for i < n {
		r, sz := utf8.DecodeRuneInString(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += sz
		case isDigitRune(r):
			j := scanNumber(text, i)
			toks = append(toks, Token{text[i:j], i, j, Number})
			i = j
		case IsVulgarFraction(r):
			toks = append(toks, Token{text[i : i+sz], i, i + sz, Number})
			i += sz
		case unicode.IsLetter(r):
			j := scanWord(text, i)
			toks = append(toks, Token{text[i:j], i, j, Word})
			i = j
		case r == '(' || r == '[' || r == '{':
			toks = append(toks, Token{text[i : i+sz], i, i + sz, Open})
			i += sz
		case r == ')' || r == ']' || r == '}':
			toks = append(toks, Token{text[i : i+sz], i, i + sz, Close})
			i += sz
		case r == '%' || r == '°' || r == '&' || r == '+' || r == '*' || r == '#' || r == '@' || r == '$' || r == '=' || r == '<' || r == '>':
			toks = append(toks, Token{text[i : i+sz], i, i + sz, Symbol})
			i += sz
		default:
			toks = append(toks, Token{text[i : i+sz], i, i + sz, Punct})
			i += sz
		}
	}
	return toks
}

// runeAt decodes the rune starting at byte offset j; past the end it
// returns (RuneError, 0), which fails every class test below exactly
// like the old bounds checks did.
func runeAt(text string, j int) (rune, int) {
	if j >= len(text) {
		return utf8.RuneError, 0
	}
	return utf8.DecodeRuneInString(text[j:])
}

// scanDigits consumes a run of digit runes starting at byte offset j.
func scanDigits(text string, j int) int {
	for j < len(text) {
		r, sz := utf8.DecodeRuneInString(text[j:])
		if !isDigitRune(r) {
			break
		}
		j += sz
	}
	return j
}

// scanNumber consumes a numeric token starting at i: digits with
// optional decimal point, fraction slash, range hyphen, or a trailing
// mixed fraction ("1 1/2" is consumed as one token only when joined by
// a space and a fraction follows).
func scanNumber(text string, i int) int {
	n := len(text)
	j := scanDigits(text, i)
	// decimal part
	if j < n && (text[j] == '.' || text[j] == ',') {
		if r, sz := runeAt(text, j+1); isDigitRune(r) {
			j = scanDigits(text, j+1+sz)
		}
	}
	// fraction part: "3/4"
	if j < n && text[j] == '/' {
		if r, sz := runeAt(text, j+1); isDigitRune(r) {
			j = scanDigits(text, j+1+sz)
		}
	}
	// range part: "2-4", "2 - 4" is NOT merged (hyphen must be tight)
	if r, sz := runeAt(text, j); r == '-' || r == '–' {
		if r2, sz2 := runeAt(text, j+sz); isDigitRune(r2) {
			k := scanDigits(text, j+sz+sz2)
			// possible fraction in upper bound "1-1/2"
			if k < n && text[k] == '/' {
				if r3, sz3 := runeAt(text, k+1); isDigitRune(r3) {
					k = scanDigits(text, k+1+sz3)
				}
			}
			j = k
		}
	}
	// mixed number: "1 1/2" — single space, then a pure fraction
	if j < n && text[j] == ' ' {
		if r, _ := runeAt(text, j+1); isDigitRune(r) {
			k := scanDigits(text, j+1)
			if k < n && text[k] == '/' {
				if r2, sz2 := runeAt(text, k+1); isDigitRune(r2) {
					j = scanDigits(text, k+1+sz2)
				}
			}
		}
	}
	// attached vulgar fraction: "1½"
	if r, sz := runeAt(text, j); IsVulgarFraction(r) {
		j += sz
	}
	return j
}

// scanWord consumes a word, allowing internal hyphens and apostrophes
// between letters ("half-and-half", "don't") but stopping at other
// punctuation.
func scanWord(text string, i int) int {
	j := i
	for j < len(text) {
		r, sz := utf8.DecodeRuneInString(text[j:])
		if unicode.IsLetter(r) || isDigitRune(r) {
			j += sz
			continue
		}
		if (r == '-' || r == '\'') && j > i {
			if r2, _ := runeAt(text, j+sz); isWordRune(r2) {
				j += sz
				continue
			}
		}
		break
	}
	return j
}

// Words returns only the token surface forms.
func Words(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// SplitSentences splits text into sentences on '.', '!', '?' and
// ';' boundaries, respecting common abbreviations and decimal points.
// Recipe instruction sections are typically sequences of short
// imperative sentences, so a light-weight rule splitter suffices.
func SplitSentences(text string) []string {
	var out []string
	runes := []rune(text)
	n := len(runes)
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(string(runes[start:end]))
		if s != "" {
			out = append(out, s)
		}
		start = end
	}
	for i := 0; i < n; i++ {
		r := runes[i]
		if r == '\n' {
			flush(i)
			start = i + 1
			continue
		}
		if r == '!' || r == '?' || r == ';' {
			flush(i + 1)
			continue
		}
		if r == '.' {
			// decimal point inside a number: don't split.
			if i > 0 && isDigitRune(runes[i-1]) && i+1 < n && isDigitRune(runes[i+1]) {
				continue
			}
			// abbreviation like "approx." followed by lowercase: don't split.
			if i+2 < n && runes[i+1] == ' ' && unicode.IsLower(runes[i+2]) && isAbbreviation(runes, i) {
				continue
			}
			flush(i + 1)
		}
	}
	flush(n)
	return out
}

// isAbbreviation inspects the word ending at the period at index i.
func isAbbreviation(runes []rune, i int) bool {
	j := i
	for j > 0 && unicode.IsLetter(runes[j-1]) {
		j--
	}
	w := strings.ToLower(string(runes[j:i]))
	switch w {
	case "approx", "etc", "min", "hr", "hrs", "tbsp", "tsp", "oz", "lb", "pkg", "no", "vs", "eg", "ie":
		return true
	}
	return false
}

// Normalize lower-cases a token and expands unicode vulgar fractions;
// it is the canonical surface-form normalization used across the
// pipeline (the paper lower-cases during pre-processing).
func Normalize(tok string) string {
	var b strings.Builder
	for _, r := range tok {
		if exp, ok := vulgarFractions[r]; ok {
			b.WriteString(exp)
			continue
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}
