package tokenize

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func texts(toks []Token) []string { return Words(toks) }

func TestTokenizeSimplePhrase(t *testing.T) {
	got := texts(Tokenize("3 teaspoons olive oil"))
	want := []string{"3", "teaspoons", "olive", "oil"}
	if !equalStrings(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenizeMixedFraction(t *testing.T) {
	toks := Tokenize("1 1/2 cups sugar")
	if toks[0].Text != "1 1/2" {
		t.Fatalf("mixed fraction not merged: %q", toks[0].Text)
	}
	if toks[0].Kind != Number {
		t.Fatalf("kind = %v, want Number", toks[0].Kind)
	}
}

func TestTokenizeRange(t *testing.T) {
	toks := Tokenize("2-3 medium tomatoes")
	if toks[0].Text != "2-3" || toks[0].Kind != Number {
		t.Fatalf("range token = %+v", toks[0])
	}
}

func TestTokenizeFraction(t *testing.T) {
	toks := Tokenize("1/2 teaspoon pepper, freshly ground")
	want := []string{"1/2", "teaspoon", "pepper", ",", "freshly", "ground"}
	if !equalStrings(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

func TestTokenizeParenthetical(t *testing.T) {
	toks := Tokenize("1 (8 ounce) package cream cheese, softened")
	want := []string{"1", "(", "8", "ounce", ")", "package", "cream", "cheese", ",", "softened"}
	if !equalStrings(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
	if toks[1].Kind != Open || toks[4].Kind != Close {
		t.Fatalf("bracket kinds wrong: %v %v", toks[1].Kind, toks[4].Kind)
	}
}

func TestTokenizeHyphenCompound(t *testing.T) {
	toks := Tokenize("1 tablespoon half-and-half")
	want := []string{"1", "tablespoon", "half-and-half"}
	if !equalStrings(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

func TestTokenizeVulgarFraction(t *testing.T) {
	toks := Tokenize("½ cup milk")
	if toks[0].Text != "½" || toks[0].Kind != Number {
		t.Fatalf("vulgar fraction token = %+v", toks[0])
	}
	if Normalize(toks[0].Text) != "1/2" {
		t.Fatalf("Normalize(½) = %q", Normalize(toks[0].Text))
	}
}

func TestTokenizeAttachedVulgar(t *testing.T) {
	toks := Tokenize("1½ cups flour")
	if toks[0].Text != "1½" {
		t.Fatalf("attached vulgar = %q", toks[0].Text)
	}
}

func TestTokenizeDecimal(t *testing.T) {
	toks := Tokenize("2.5 pounds chicken")
	if toks[0].Text != "2.5" || toks[0].Kind != Number {
		t.Fatalf("decimal = %+v", toks[0])
	}
}

func TestTokenizeDegreeSymbol(t *testing.T) {
	toks := Tokenize("Preheat oven to 350°F")
	want := []string{"Preheat", "oven", "to", "350", "°", "F"}
	if !equalStrings(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
	if toks[4].Kind != Symbol {
		t.Fatalf("degree kind = %v", toks[4].Kind)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "1 sheet frozen puff pastry ( thawed )"
	for _, tok := range Tokenize(in) {
		if in[tok.Start:tok.End] != tok.Text {
			t.Fatalf("offset mismatch: %q vs %q", in[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeOffsetsUnicode(t *testing.T) {
	in := "add ½ cup crème fraîche"
	for _, tok := range Tokenize(in) {
		if in[tok.Start:tok.End] != tok.Text {
			t.Fatalf("offset mismatch: %q vs %q", in[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
	if got := Tokenize("   \t\n "); len(got) != 0 {
		t.Fatalf("whitespace input produced %v", got)
	}
}

func TestTokenizeApostrophe(t *testing.T) {
	toks := Tokenize("confectioners' sugar isn't plain")
	// trailing apostrophe (not followed by letter) splits off.
	want := []string{"confectioners", "'", "sugar", "isn't", "plain"}
	if !equalStrings(texts(toks), want) {
		t.Fatalf("got %v want %v", texts(toks), want)
	}
}

// Property: offsets are strictly increasing and in-bounds, and each
// token's slice reproduces its text.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prev = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: no token contains leading/trailing space, and no
// non-space rune of the input is dropped.
func TestTokenizeCoverageProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		covered := 0
		for _, tok := range toks {
			if strings.TrimSpace(tok.Text) != tok.Text && tok.Kind != Number {
				return false // only merged mixed numbers may contain an internal space
			}
			covered += len(tok.Text)
		}
		nonSpace := 0
		for _, r := range s {
			if !unicode.IsSpace(r) {
				nonSpace += len(string(r))
			}
		}
		// covered includes internal spaces of mixed numbers, so >=.
		return covered >= nonSpace
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentences(t *testing.T) {
	in := "Bring water to a boil in a large pot. Add pasta and cook for 8 minutes. Drain; serve hot."
	got := SplitSentences(in)
	want := []string{
		"Bring water to a boil in a large pot.",
		"Add pasta and cook for 8 minutes.",
		"Drain;",
		"serve hot.",
	}
	if !equalStrings(got, want) {
		t.Fatalf("got %#v want %#v", got, want)
	}
}

func TestSplitSentencesDecimal(t *testing.T) {
	got := SplitSentences("Add 2.5 cups water. Stir.")
	if len(got) != 2 {
		t.Fatalf("decimal split wrong: %#v", got)
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	got := SplitSentences("Simmer for 10 min. then stir. Serve.")
	if len(got) != 2 {
		t.Fatalf("abbrev split wrong: %#v", got)
	}
}

func TestSplitSentencesNewlines(t *testing.T) {
	got := SplitSentences("Mix flour and salt\nKnead the dough\nLet it rest")
	if len(got) != 3 {
		t.Fatalf("newline split wrong: %#v", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Tomatoes": "tomatoes",
		"½":        "1/2",
		"1½":       "11/2",
		"OLIVE":    "olive",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Word, Number, Punct, Open, Close, Symbol, Kind(99)}
	want := []string{"WORD", "NUMBER", "PUNCT", "OPEN", "CLOSE", "SYMBOL", "UNKNOWN"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
