package translate

import "strings"

// French dictionary.
var frenchDict = &dictionary{
	ingredients: map[string]string{
		"water": "eau", "salt": "sel", "pepper": "poivre",
		"sugar": "sucre", "flour": "farine", "butter": "beurre",
		"milk": "lait", "whole milk": "lait entier", "egg": "œuf",
		"oil": "huile", "olive oil": "huile d'olive",
		"extra virgin olive oil": "huile d'olive extra vierge",
		"onion":                  "oignon", "garlic": "ail", "tomato": "tomate",
		"potato": "pomme de terre", "carrot": "carotte",
		"chicken": "poulet", "beef": "bœuf", "pork": "porc",
		"fish": "poisson", "rice": "riz", "pasta": "pâtes",
		"spaghetti": "spaghettis", "cheese": "fromage",
		"cream": "crème", "cream cheese": "fromage à la crème",
		"blue cheese": "fromage bleu", "mushroom": "champignon",
		"spinach": "épinards", "basil": "basilic", "thyme": "thym",
		"parsley": "persil", "lemon": "citron", "lime": "citron vert",
		"apple": "pomme", "strawberry": "fraise", "honey": "miel",
		"vinegar": "vinaigre", "wine": "vin", "bread": "pain",
		"puff pastry": "pâte feuilletée", "cabbage": "chou",
		"shrimp": "crevette", "celery": "céleri", "ginger": "gingembre",
		"cucumber": "concombre", "corn": "maïs", "bean": "haricot",
		"pea": "petit pois", "lettuce": "laitue", "yogurt": "yaourt",
	},
	units: map[string]string{
		"cup": "tasse", "cups": "tasses", "teaspoon": "cuillère à café",
		"teaspoons": "cuillères à café", "tablespoon": "cuillère à soupe",
		"tablespoons": "cuillères à soupe", "ounce": "once",
		"ounces": "onces", "pound": "livre", "pounds": "livres",
		"pinch": "pincée", "clove": "gousse", "cloves": "gousses",
		"sheet": "feuille", "slice": "tranche", "slices": "tranches",
		"package": "paquet", "can": "boîte", "sprig": "brin",
		"head": "tête", "stalk": "tige", "bunch": "botte",
	},
	processes: map[string]string{
		"boil": "faire bouillir", "bring": "porter", "add": "ajouter",
		"mix": "mélanger", "stir": "remuer", "chop": "hacher",
		"slice": "trancher", "bake": "cuire au four", "cook": "cuire",
		"fry": "frire", "grill": "griller", "preheat": "préchauffer",
		"drain": "égoutter", "serve": "servir", "season": "assaisonner",
		"pour": "verser", "heat": "chauffer", "melt": "faire fondre",
		"whisk": "fouetter", "knead": "pétrir", "simmer": "mijoter",
		"cover": "couvrir", "transfer": "transférer", "toss": "remuer",
		"spread": "étaler", "sprinkle": "saupoudrer", "cool": "refroidir",
		"cream": "crémer", "fold": "incorporer", "roast": "rôtir",
	},
	attributes: map[string]string{
		"chopped": "haché", "minced": "émincé", "ground": "moulu",
		"sliced": "tranché", "diced": "coupé en dés",
		"grated": "râpé", "melted": "fondu", "softened": "ramolli",
		"thawed": "décongelé", "beaten": "battu", "crushed": "écrasé",
		"fresh": "frais", "freshly": "fraîchement", "dry": "sec",
		"dried": "séché", "frozen": "surgelé", "cold": "froid",
		"hot": "chaud", "warm": "tiède", "room temperature": "à température ambiante",
		"small": "petit", "medium": "moyen", "large": "grand",
	},
	utensils: map[string]string{
		"pot": "marmite", "pan": "poêle", "bowl": "bol",
		"oven": "four", "skillet": "poêle", "saucepan": "casserole",
		"whisk": "fouet", "knife": "couteau", "spoon": "cuillère",
		"baking sheet": "plaque de cuisson", "mixing bowl": "saladier",
		"grill": "gril", "blender": "mixeur", "colander": "passoire",
	},
	phrases: map[string]string{"to taste": "au goût"},
	renderIngredient: func(qty, unit, attrs, name string) string {
		// "2 tasses d'oignon haché" — attributes follow the noun.
		var parts []string
		if qty != "" {
			parts = append(parts, qty)
		}
		if unit != "" {
			parts = append(parts, unit)
		}
		de := "de "
		if name != "" && strings.ContainsAny(name[:1], "aeiouhàéœ") {
			de = "d'"
		}
		if unit != "" {
			parts = append(parts, de+name)
		} else {
			parts = append(parts, name)
		}
		if attrs != "" {
			parts = append(parts, attrs)
		}
		return strings.Join(parts, " ")
	},
	stepWord: "étape",
	withWord: "avec",
	inWord:   "dans",
}

// Spanish dictionary.
var spanishDict = &dictionary{
	ingredients: map[string]string{
		"water": "agua", "salt": "sal", "pepper": "pimienta",
		"sugar": "azúcar", "flour": "harina", "butter": "mantequilla",
		"milk": "leche", "whole milk": "leche entera", "egg": "huevo",
		"oil": "aceite", "olive oil": "aceite de oliva",
		"extra virgin olive oil": "aceite de oliva virgen extra",
		"onion":                  "cebolla", "garlic": "ajo", "tomato": "tomate",
		"potato": "papa", "carrot": "zanahoria", "chicken": "pollo",
		"beef": "carne de res", "pork": "cerdo", "fish": "pescado",
		"rice": "arroz", "pasta": "pasta", "spaghetti": "espaguetis",
		"cheese": "queso", "cream": "crema", "cream cheese": "queso crema",
		"blue cheese": "queso azul", "mushroom": "champiñón",
		"spinach": "espinaca", "basil": "albahaca", "thyme": "tomillo",
		"parsley": "perejil", "lemon": "limón", "lime": "lima",
		"apple": "manzana", "strawberry": "fresa", "honey": "miel",
		"vinegar": "vinagre", "wine": "vino", "bread": "pan",
		"puff pastry": "hojaldre", "cabbage": "repollo",
		"shrimp": "camarón", "celery": "apio", "ginger": "jengibre",
	},
	units: map[string]string{
		"cup": "taza", "cups": "tazas", "teaspoon": "cucharadita",
		"teaspoons": "cucharaditas", "tablespoon": "cucharada",
		"tablespoons": "cucharadas", "ounce": "onza", "ounces": "onzas",
		"pound": "libra", "pounds": "libras", "pinch": "pizca",
		"clove": "diente", "cloves": "dientes", "sheet": "lámina",
		"slice": "rebanada", "package": "paquete", "can": "lata",
		"sprig": "ramita", "head": "cabeza",
	},
	processes: map[string]string{
		"boil": "hervir", "bring": "llevar", "add": "añadir",
		"mix": "mezclar", "stir": "revolver", "chop": "picar",
		"slice": "rebanar", "bake": "hornear", "cook": "cocinar",
		"fry": "freír", "grill": "asar", "preheat": "precalentar",
		"drain": "escurrir", "serve": "servir", "season": "sazonar",
		"pour": "verter", "heat": "calentar", "melt": "derretir",
		"whisk": "batir", "knead": "amasar", "simmer": "cocer a fuego lento",
		"cover": "cubrir", "transfer": "transferir", "toss": "mezclar",
		"spread": "untar", "sprinkle": "espolvorear", "cool": "enfriar",
	},
	attributes: map[string]string{
		"chopped": "picado", "minced": "finamente picado",
		"ground": "molido", "sliced": "rebanado", "diced": "en cubos",
		"grated": "rallado", "melted": "derretido", "softened": "ablandado",
		"thawed": "descongelado", "beaten": "batido", "crushed": "triturado",
		"fresh": "fresco", "freshly": "recién", "dry": "seco",
		"dried": "seco", "frozen": "congelado", "cold": "frío",
		"hot": "caliente", "warm": "tibio", "room temperature": "a temperatura ambiente",
		"small": "pequeño", "medium": "mediano", "large": "grande",
	},
	utensils: map[string]string{
		"pot": "olla", "pan": "sartén", "bowl": "tazón", "oven": "horno",
		"skillet": "sartén", "saucepan": "cacerola", "whisk": "batidor",
		"knife": "cuchillo", "spoon": "cuchara",
		"baking sheet": "bandeja de horno", "mixing bowl": "tazón para mezclar",
		"grill": "parrilla", "blender": "licuadora", "colander": "colador",
	},
	phrases: map[string]string{"to taste": "al gusto"},
	renderIngredient: func(qty, unit, attrs, name string) string {
		// "2 tazas de cebolla picada"
		var parts []string
		if qty != "" {
			parts = append(parts, qty)
		}
		if unit != "" {
			parts = append(parts, unit, "de", name)
		} else {
			parts = append(parts, name)
		}
		if attrs != "" {
			parts = append(parts, attrs)
		}
		return strings.Join(parts, " ")
	},
	stepWord: "paso",
	withWord: "con",
	inWord:   "en",
}
