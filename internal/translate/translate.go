// Package translate renders mined recipe models in another language —
// the first application the paper lists for its structure
// ("translating recipes between languages", §IV-§V). Because the
// recipe is already decomposed into typed fields (name, state,
// quantity, unit; process, arguments), translation is dictionary
// lookup per field plus target-language re-ordering — no MT system
// needed, which is exactly the point of mining the structure first.
package translate

import (
	"fmt"
	"strings"

	"recipemodel/internal/core"
	"recipemodel/internal/lemma"
)

// lem normalizes surface forms before dictionary lookup ("tomatoes" →
// "tomato"); shared and read-only.
var lem = lemma.New()

// Lang identifies a target language.
type Lang string

// Supported target languages.
const (
	French  Lang = "fr"
	Spanish Lang = "es"
)

// dictionary holds per-field lexicons for one language.
type dictionary struct {
	ingredients map[string]string
	units       map[string]string
	processes   map[string]string
	attributes  map[string]string // states, sizes, temps, dry/fresh
	utensils    map[string]string
	phrases     map[string]string // fixed phrases ("to taste")
	// renderIngredient orders the translated fields.
	renderIngredient func(qty, unit, attrs, name string) string
	stepWord         string
	withWord         string
	inWord           string
}

// Translator translates mined models into one target language.
type Translator struct {
	lang Lang
	dict *dictionary
}

// New returns a translator for the language, or an error for an
// unsupported one.
func New(lang Lang) (*Translator, error) {
	switch lang {
	case French:
		return &Translator{lang: lang, dict: frenchDict}, nil
	case Spanish:
		return &Translator{lang: lang, dict: spanishDict}, nil
	default:
		return nil, fmt.Errorf("translate: unsupported language %q", lang)
	}
}

// Lang returns the translator's target language.
func (t *Translator) Lang() Lang { return t.lang }

// lookup translates via m, falling back to the original form — the
// conventional behaviour for out-of-dictionary terms (they are usually
// proper names that carry across languages).
func lookup(m map[string]string, term string) string {
	if term == "" {
		return ""
	}
	lt := strings.ToLower(term)
	if out, ok := m[lt]; ok {
		return out
	}
	// lemmatized fallback: "tomatoes" → "tomato"; for multiword terms
	// lemmatize the head word.
	ws := strings.Fields(lt)
	ws[len(ws)-1] = lem.Lemma(ws[len(ws)-1], lemma.Noun)
	if out, ok := m[strings.Join(ws, " ")]; ok {
		return out
	}
	return term
}

// Ingredient renders one ingredient record in the target language.
func (t *Translator) Ingredient(rec core.IngredientRecord) string {
	d := t.dict
	var attrs []string
	for _, a := range []string{rec.Size, rec.Temp, rec.DryFresh, rec.State} {
		if a != "" {
			attrs = append(attrs, lookup(d.attributes, a))
		}
	}
	return d.renderIngredient(
		rec.Quantity,
		lookup(d.units, rec.Unit),
		strings.Join(attrs, ", "),
		lookup(d.ingredients, rec.Name),
	)
}

// Event renders one cooking event in the target language.
func (t *Translator) Event(e core.Event) string {
	d := t.dict
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d: %s", d.stepWord, e.Step+1, lookup(d.processes, e.Process))
	var args []string
	for _, a := range e.Ingredients {
		args = append(args, lookup(d.ingredients, a.Text))
	}
	if len(args) > 0 {
		b.WriteString(" " + strings.Join(args, ", "))
	}
	var uts []string
	for _, u := range e.Utensils {
		uts = append(uts, lookup(d.utensils, u.Text))
	}
	if len(uts) > 0 {
		b.WriteString(" " + d.inWord + " " + strings.Join(uts, ", "))
	}
	return b.String()
}

// Recipe renders the whole mined model in the target language.
func (t *Translator) Recipe(m *core.RecipeModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", m.Title, t.lang)
	for _, rec := range m.Ingredients {
		fmt.Fprintf(&b, "  - %s\n", t.Ingredient(rec))
	}
	for _, e := range m.Events {
		fmt.Fprintf(&b, "  %s\n", t.Event(e))
	}
	return b.String()
}
