package translate

import (
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/relations"
)

func TestNewUnsupported(t *testing.T) {
	if _, err := New(Lang("klingon")); err == nil {
		t.Fatal("expected error")
	}
}

func TestFrenchIngredient(t *testing.T) {
	tr, err := New(French)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Ingredient(core.IngredientRecord{
		Name: "onion", State: "chopped", Quantity: "2", Unit: "cups",
	})
	if got != "2 tasses d'oignon haché" {
		t.Fatalf("got %q", got)
	}
	// consonant-initial name takes "de".
	got = tr.Ingredient(core.IngredientRecord{Name: "flour", Quantity: "1", Unit: "cup"})
	if got != "1 tasse de farine" {
		t.Fatalf("got %q", got)
	}
}

func TestSpanishIngredient(t *testing.T) {
	tr, err := New(Spanish)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Ingredient(core.IngredientRecord{
		Name: "onion", State: "chopped", Quantity: "2", Unit: "cups",
	})
	if got != "2 tazas de cebolla picado" {
		t.Fatalf("got %q", got)
	}
}

func TestUnknownTermsCarryOver(t *testing.T) {
	tr, _ := New(French)
	got := tr.Ingredient(core.IngredientRecord{Name: "gochujang", Quantity: "1", Unit: "cup"})
	if !strings.Contains(got, "gochujang") {
		t.Fatalf("OOV name should carry over: %q", got)
	}
}

func TestEventRendering(t *testing.T) {
	tr, _ := New(French)
	got := tr.Event(core.Event{Step: 0, Relation: relations.Relation{
		Process:     "boil",
		Ingredients: []relations.Argument{{Text: "water"}},
		Utensils:    []relations.Argument{{Text: "pot"}},
	}})
	want := "étape 1: faire bouillir eau dans marmite"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestRecipeRendering(t *testing.T) {
	m := &core.RecipeModel{
		Title: "Tarte",
		Ingredients: []core.IngredientRecord{
			{Name: "tomato", Quantity: "2-3", Size: "medium"},
			{Name: "puff pastry", Quantity: "1", Unit: "sheet", Temp: "frozen", State: "thawed"},
		},
		Events: []core.Event{
			{Step: 0, Relation: relations.Relation{Process: "preheat", Utensils: []relations.Argument{{Text: "oven"}}}},
		},
	}
	for _, lang := range []Lang{French, Spanish} {
		tr, err := New(lang)
		if err != nil {
			t.Fatal(err)
		}
		out := tr.Recipe(m)
		if !strings.Contains(out, "Tarte") {
			t.Fatalf("%s: title missing:\n%s", lang, out)
		}
		if strings.Contains(out, "preheat") {
			t.Fatalf("%s: process untranslated:\n%s", lang, out)
		}
		if tr.Lang() != lang {
			t.Fatal("Lang mismatch")
		}
	}
	fr, _ := New(French)
	if out := fr.Recipe(m); !strings.Contains(out, "pâte feuilletée") || !strings.Contains(out, "surgelé") {
		t.Fatalf("french fields missing:\n%s", out)
	}
}

func TestEmptyFields(t *testing.T) {
	tr, _ := New(Spanish)
	got := tr.Ingredient(core.IngredientRecord{Name: "salt"})
	if got != "sal" {
		t.Fatalf("got %q", got)
	}
}
