// Package recipemodel is a from-scratch Go reproduction of
// "A Named Entity Based Approach to Model Recipes" (Diwan, Batra,
// Bagler; ICDE 2020 Workshops, arXiv:2004.12184).
//
// The library models a cooking recipe as a uniform, computable
// structure (the paper's Fig 1): the ingredients section decomposes
// into records with seven attributes (name, processing state,
// quantity, unit, temperature, dry/fresh state, size — Table II), and
// the instructions section becomes a temporal chain of many-to-many
// cooking events (process × ingredients × utensils).
//
// Everything is implemented on the standard library alone: the
// linear-chain CRF standing in for the Stanford NER tagger, an
// averaged-perceptron POS tagger over the 36-tag Penn Treebank set, a
// WordNet-morphy-style lemmatizer, K-Means with the elbow criterion,
// PCA, a rule-driven dependency parser for imperative instructions,
// and a seeded generative grammar that synthesizes a RecipeDB-style
// corpus with gold annotations (the original 118k-recipe dataset is
// not redistributable).
//
// Quick start:
//
//	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
//	if err != nil { ... }
//	m := p.ModelRecipe("Tomato Tart", "French",
//	    []string{"1 sheet frozen puff pastry (thawed)", "2-3 medium tomatoes"},
//	    "Preheat the oven to 375 °F. Add the tomatoes to the skillet.")
//	fmt.Println(m.Ingredients[0].Name) // "puff pastry"
package recipemodel

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"recipemodel/internal/core"
	"recipemodel/internal/corpus"
	"recipemodel/internal/depparse"
	"recipemodel/internal/mathx"
	"recipemodel/internal/ner"
	"recipemodel/internal/nutrition"
	"recipemodel/internal/persist"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/relations"
	"recipemodel/internal/similarity"
)

// Re-exported model types.
type (
	// RecipeModel is the paper's uniform recipe structure (Fig 1).
	RecipeModel = core.RecipeModel
	// IngredientRecord is one decomposed ingredient phrase (Table I).
	IngredientRecord = core.IngredientRecord
	// Event is one cooking event in the temporal chain.
	Event = core.Event
	// Relation is a many-to-many process tuple (Fig 5).
	Relation = relations.Relation
	// EntitySpan is a labeled token range produced by the NER layer.
	EntitySpan = ner.Span
	// DependencyTree is the parse of one instruction (Fig 3).
	DependencyTree = depparse.Tree
	// NutritionProfile is a nutrient total (application §IV).
	NutritionProfile = nutrition.Profile
	// SimilarityWeights controls the recipe-similarity facet mix.
	SimilarityWeights = similarity.Weights
	// RankedRecipe pairs a candidate index with its similarity score.
	RankedRecipe = similarity.Ranked
	// InstructionAnnotation bundles the instruction-stack output for
	// one step (batch form of AnnotateInstruction's triple return).
	InstructionAnnotation = core.InstructionAnnotation
	// RecipeInput is one raw recipe, the unit of work of the batch
	// mining engine.
	RecipeInput = core.RecipeInput
	// Rejection is one quarantined record from a partial-result batch
	// call: input index, truncated phrase echo, machine-readable code,
	// and human detail.
	Rejection = quarantine.Rejection
	// RejectionCode is the stable machine-readable cause taxonomy
	// carried by Rejection.Code and the dead-letter JSONL format.
	RejectionCode = quarantine.Code
)

// Options configures pipeline construction. The taggers are trained at
// construction time on the synthetic gold corpus; with a fixed Seed
// the result is fully deterministic.
type Options struct {
	// Seed drives corpus generation and training.
	Seed int64
	// TrainingPhrases is the number of gold ingredient phrases drawn
	// per source site.
	TrainingPhrases int
	// TrainingInstructions is the number of gold instruction steps
	// drawn per source site.
	TrainingInstructions int
	// Epochs for CRF training.
	Epochs int
	// Method selects the CRF trainer: "sgd" (default) or "perceptron".
	Method string
}

// DefaultOptions returns a configuration that trains an accurate
// pipeline in a few seconds.
func DefaultOptions() Options {
	return Options{
		Seed:                 1,
		TrainingPhrases:      2500,
		TrainingInstructions: 1200,
		Epochs:               6,
		Method:               "sgd",
	}
}

// Pipeline is a trained recipe-modeling pipeline. All components are
// read-only after training, so one Pipeline may serve any number of
// goroutines; the batch methods (AnnotateIngredients,
// AnnotateInstructions, ModelRecipes) fan out over an internal worker
// pool sized by SetWorkers.
type Pipeline struct {
	inner     *core.Pipeline
	estimator *nutrition.Estimator
	// workers bounds the batch-method pool; defaults to NumCPU.
	workers int
}

// SetWorkers bounds the goroutines the batch methods use (n <= 0
// resets to runtime.NumCPU()). Batch results are byte-identical at
// any worker count, so this knob trades only wall-clock for cores.
func (p *Pipeline) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p.workers = n
}

// Workers reports the current batch worker bound.
func (p *Pipeline) Workers() int { return p.workers }

// NewPipeline trains the ingredient-section and instruction-section
// NER models on synthetic gold corpora from both source styles and
// wires the full stack (POS tagger, dependency parser, relation
// extractor, nutrition estimator).
func NewPipeline(opts Options) (*Pipeline, error) {
	if opts.TrainingPhrases <= 0 || opts.TrainingInstructions <= 0 {
		return nil, fmt.Errorf("recipemodel: training sizes must be positive, got %d/%d",
			opts.TrainingPhrases, opts.TrainingInstructions)
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 6
	}
	half := opts.TrainingPhrases / 2
	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, opts.Seed+1)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, opts.Seed+2)

	ingTrain := append(
		corpus.IngredientSentences(gA.UniquePhrases(opts.TrainingPhrases-half)),
		corpus.IngredientSentences(gF.UniquePhrases(half))...)
	insHalf := opts.TrainingInstructions / 2
	insTrain := append(
		corpus.InstructionSentences(gA.Instructions(opts.TrainingInstructions-insHalf)),
		corpus.InstructionSentences(gF.Instructions(insHalf))...)

	cfg := ner.TrainConfig{Epochs: opts.Epochs, Seed: opts.Seed + 3, Method: opts.Method}
	ingNER := ner.Train(ingTrain, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.DefaultFeatureOptions), cfg)
	insNER := ner.Train(insTrain, ner.InstructionTypes,
		ner.NewInstructionExtractor(ner.DefaultFeatureOptions), cfg)
	if err := ingNER.CompileFor(ner.TaskIngredient, ner.DefaultFeatureOptions); err != nil {
		return nil, fmt.Errorf("recipemodel: %w", err)
	}
	if err := insNER.CompileFor(ner.TaskInstruction, ner.DefaultFeatureOptions); err != nil {
		return nil, fmt.Errorf("recipemodel: %w", err)
	}

	return &Pipeline{
		inner:     core.NewPipeline(nil, ingNER, insNER, nil),
		estimator: nutrition.NewEstimator(),
		workers:   runtime.NumCPU(),
	}, nil
}

// ModelRecipe mines the full structure from a raw recipe: one string
// per ingredient line, and the instructions as free text (steps split
// on sentence boundaries).
func (p *Pipeline) ModelRecipe(title, cuisine string, ingredientLines []string, instructions string) *RecipeModel {
	return p.inner.ModelRecipe(title, cuisine, ingredientLines, instructions)
}

// AnnotateIngredient decomposes a single ingredient phrase into its
// attribute record.
func (p *Pipeline) AnnotateIngredient(phrase string) IngredientRecord {
	return p.inner.AnnotateIngredient(phrase)
}

// AnnotateInstruction runs the instruction stack over one step,
// returning the entity spans, the dependency parse and the extracted
// relations.
func (p *Pipeline) AnnotateInstruction(step string) ([]EntitySpan, *DependencyTree, []Relation) {
	return p.inner.AnnotateInstruction(step)
}

// AnnotateIngredients decomposes a batch of ingredient phrases
// concurrently (corpus-scale form of AnnotateIngredient; the paper
// annotates 11.5M phrases). Result i corresponds to phrases[i] and is
// byte-identical to the serial loop at any worker count.
func (p *Pipeline) AnnotateIngredients(phrases []string) []IngredientRecord {
	return p.inner.AnnotateIngredients(phrases, p.workers)
}

// AnnotateIngredientsContext is AnnotateIngredients with cooperative
// cancellation: when ctx is cancelled the pool stops dispatching new
// phrases, finishes the in-flight ones, drains its workers (no
// goroutine outlives the call), and returns the partial records with
// ctx.Err(). An uncancelled call returns a nil error and results
// byte-identical to AnnotateIngredients.
func (p *Pipeline) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]IngredientRecord, error) {
	return p.inner.AnnotateIngredientsContext(ctx, phrases, p.workers)
}

// AnnotateInstructions runs the instruction stack over a batch of
// steps concurrently.
func (p *Pipeline) AnnotateInstructions(steps []string) []InstructionAnnotation {
	return p.inner.AnnotateInstructions(steps, p.workers)
}

// AnnotateInstructionsContext is the cancellable form of
// AnnotateInstructions (same contract as AnnotateIngredientsContext).
func (p *Pipeline) AnnotateInstructionsContext(ctx context.Context, steps []string) ([]InstructionAnnotation, error) {
	return p.inner.AnnotateInstructionsContext(ctx, steps, p.workers)
}

// ModelRecipes mines a corpus of raw recipes concurrently, one recipe
// per pool slot (the paper's 40,000-recipe mining run). Result i
// corresponds to recipes[i].
func (p *Pipeline) ModelRecipes(recipes []RecipeInput) []*RecipeModel {
	return p.inner.ModelRecipes(recipes, p.workers)
}

// ModelRecipesContext is the cancellable form of ModelRecipes: on
// cancellation the mined prefix is returned with ctx.Err(),
// undispatched slots are nil, and no worker goroutine leaks.
func (p *Pipeline) ModelRecipesContext(ctx context.Context, recipes []RecipeInput) ([]*RecipeModel, error) {
	return p.inner.ModelRecipesContext(ctx, recipes, p.workers)
}

// AnnotateIngredientChecked is AnnotateIngredient with the typed
// rejection surfaced: poison input (invalid UTF-8 under a reject
// policy, over-cap length, nothing annotatable, a contained tagger
// panic) returns a quarantine error whose stable code callers can
// branch on; the record is then empty but for the echoed phrase.
func (p *Pipeline) AnnotateIngredientChecked(phrase string) (IngredientRecord, error) {
	return p.inner.AnnotateIngredientChecked(phrase)
}

// AnnotateIngredientsPartial decomposes a batch with record-level
// fault containment: record i is byte-identical to a clean
// AnnotateIngredient(phrases[i]), poison phrases come back as typed,
// index-ordered rejections instead of aborting the batch, and the
// error is non-nil only when ctx was cancelled.
func (p *Pipeline) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]IngredientRecord, []Rejection, error) {
	return p.inner.AnnotateIngredientsPartial(ctx, phrases, p.workers)
}

// AnnotateInstructionsPartial is the containment-aware form of
// AnnotateInstructions (same contract as AnnotateIngredientsPartial).
func (p *Pipeline) AnnotateInstructionsPartial(ctx context.Context, steps []string) ([]InstructionAnnotation, []Rejection, error) {
	return p.inner.AnnotateInstructionsPartial(ctx, steps, p.workers)
}

// ModelRecipesPartial mines a corpus with record-level fault
// containment: a poison recipe yields a nil slot plus a typed
// rejection (echoing its title), and the surviving N-1 models are
// byte-identical to the same recipes in a clean run at any worker
// count.
func (p *Pipeline) ModelRecipesPartial(ctx context.Context, recipes []RecipeInput) ([]*RecipeModel, []Rejection, error) {
	return p.inner.ModelRecipesPartial(ctx, recipes, p.workers)
}

// ModelRecipeContext mines one recipe under a context, checking for
// cancellation between ingredient lines and instruction steps — the
// request-deadline form of ModelRecipe used by the HTTP server.
func (p *Pipeline) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*RecipeModel, error) {
	return p.inner.ModelRecipeContext(ctx, title, cuisine, ingredientLines, instructions)
}

// Inputs converts raw synthetic recipes to batch-mining inputs.
func Inputs(rs []SyntheticRecipe) []RecipeInput {
	out := make([]RecipeInput, len(rs))
	for i, r := range rs {
		out[i] = RecipeInput{
			Title:           r.Title,
			Cuisine:         r.Cuisine,
			IngredientLines: r.IngredientLines,
			Instructions:    r.Instructions,
		}
	}
	return out
}

// EstimateNutrition totals the nutrient profile of a modeled recipe
// (application §IV); resolved reports how many ingredients matched the
// embedded nutrient table.
func (p *Pipeline) EstimateNutrition(m *RecipeModel) (profile NutritionProfile, resolved int) {
	return p.estimator.EstimateRecipe(m)
}

// Similarity scores the structural similarity of two modeled recipes
// in [0, 1] (application §IV).
func Similarity(a, b *RecipeModel) float64 {
	return similarity.Score(a, b, similarity.DefaultWeights)
}

// MostSimilar ranks candidates by structural similarity to the query.
func MostSimilar(query *RecipeModel, candidates []*RecipeModel) []RankedRecipe {
	return similarity.MostSimilar(query, candidates, similarity.DefaultWeights)
}

// SimilarityCorpusWeights holds IDF weights learned from a mined
// corpus: sharing a rare ingredient says more than sharing salt.
type SimilarityCorpusWeights = similarity.CorpusWeights

// LearnSimilarityWeights computes IDF weights over a mined corpus.
func LearnSimilarityWeights(models []*RecipeModel) *SimilarityCorpusWeights {
	return similarity.LearnWeights(models)
}

// WeightedSimilarity scores a against b with the ingredient facet
// IDF-weighted by the corpus statistics.
func WeightedSimilarity(a, b *RecipeModel, w *SimilarityCorpusWeights) float64 {
	return similarity.WeightedScore(a, b, w, similarity.DefaultWeights)
}

// SyntheticRecipes generates n gold-annotated recipes from the
// synthetic RecipeDB grammar (half AllRecipes-style, half
// FOOD.com-style) — handy for demos and benchmarks.
func SyntheticRecipes(n int, seed int64) []SyntheticRecipe {
	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, seed)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, seed+1)
	out := make([]SyntheticRecipe, 0, n)
	for i := 0; i < n; i++ {
		g := gA
		if i%2 == 1 {
			g = gF
		}
		r := g.Recipe()
		sr := SyntheticRecipe{Title: r.Title, Cuisine: r.Cuisine}
		for _, ing := range r.Ingredients {
			sr.IngredientLines = append(sr.IngredientLines, ing.Text)
		}
		for _, in := range r.Instructions {
			if sr.Instructions != "" {
				sr.Instructions += " "
			}
			sr.Instructions += in.Text
		}
		out = append(out, sr)
	}
	return out
}

// SyntheticRecipe is a raw (unannotated) recipe as a website would
// present it.
type SyntheticRecipe struct {
	Title           string
	Cuisine         string
	IngredientLines []string
	Instructions    string
}

// Save persists the pipeline's trained taggers to w; a pipeline
// restored with LoadPipeline produces byte-identical annotations.
func (p *Pipeline) Save(w io.Writer) error {
	return persist.SaveBundle(w, p.inner.IngredientNER, p.inner.InstructionNER, ner.DefaultFeatureOptions)
}

// LoadPipeline restores a pipeline persisted with Save.
func LoadPipeline(r io.Reader) (*Pipeline, error) {
	ing, ins, err := persist.LoadBundle(r)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		inner:     core.NewPipeline(nil, ing, ins, nil),
		estimator: nutrition.NewEstimator(),
		workers:   runtime.NumCPU(),
	}, nil
}

// SaveToStore persists the pipeline into the versioned model store at
// dir (creating the store when absent) and returns the new version
// name. The install is crash-safe: the bundle and its checksum
// manifest become durable before the store's CURRENT pointer swings,
// so a crash mid-save can never leave the store unloadable.
func (p *Pipeline) SaveToStore(dir string) (string, error) {
	st, err := persist.OpenStore(dir)
	if err != nil {
		return "", err
	}
	return st.Save(p.inner.IngredientNER, p.inner.InstructionNER, ner.DefaultFeatureOptions)
}

// LoadPipelineFromStore restores the CURRENT version from a versioned
// model store, verifying the bundle checksum before decoding, and
// returns the pipeline together with the version name it serves.
func LoadPipelineFromStore(dir string) (*Pipeline, string, error) {
	st, err := persist.OpenStore(dir)
	if err != nil {
		return nil, "", err
	}
	ing, ins, version, err := st.Load()
	if err != nil {
		return nil, version, err
	}
	return &Pipeline{
		inner:     core.NewPipeline(nil, ing, ins, nil),
		estimator: nutrition.NewEstimator(),
		workers:   runtime.NumCPU(),
	}, version, nil
}

// ClusterPhrases reproduces the paper's §II.D-E embedding step on
// arbitrary ingredient phrases: each phrase is pre-processed,
// POS-tagged, embedded as a 1×36 tag-frequency vector, and clustered
// with K-Means (k clusters). It returns the cluster assignment per
// phrase and the 2-D PCA projection of each phrase vector (the Fig 2
// view). len(phrases) must be at least k.
func ClusterPhrases(phrases []string, k int, seed int64) (assignment []int, projected [][2]float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	s, err := core.NewSampler(phrases, nil, k, rng)
	if err != nil {
		return nil, nil, err
	}
	pca := mathx.FitPCA(s.Vectors, 2)
	projected = make([][2]float64, len(phrases))
	for i, v := range s.Vectors {
		p := pca.Transform(v)
		projected[i] = [2]float64{p[0], p[1]}
	}
	return s.Result.Assignment, projected, nil
}
