package recipemodel

import (
	"strings"
	"sync"
	"testing"
)

var (
	sharedOnce sync.Once
	sharedPipe *Pipeline
)

// pipe returns a pipeline shared across the root-package tests (the
// training cost is paid once).
func pipe(t *testing.T) *Pipeline {
	t.Helper()
	sharedOnce.Do(func() {
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			t.Fatalf("NewPipeline: %v", err)
		}
		sharedPipe = p
	})
	return sharedPipe
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Options{}); err == nil {
		t.Fatal("zero options should error")
	}
	if _, err := NewPipeline(Options{TrainingPhrases: 10}); err == nil {
		t.Fatal("missing instruction size should error")
	}
}

func TestAnnotateIngredientPublic(t *testing.T) {
	rec := pipe(t).AnnotateIngredient("2 cups chopped onion")
	if rec.Name != "onion" || rec.State != "chopped" || rec.Quantity != "2" || rec.Unit != "cups" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestModelRecipePublic(t *testing.T) {
	m := pipe(t).ModelRecipe("Pasta", "Italian",
		[]string{"1 pound spaghetti", "2 cloves garlic, minced", "salt to taste"},
		"Bring the water to a boil in a large pot. Add the spaghetti and the salt to the pot. Drain and serve.")
	if len(m.Ingredients) != 3 {
		t.Fatalf("ingredients = %d", len(m.Ingredients))
	}
	if len(m.Instructions) != 3 {
		t.Fatalf("instructions = %v", m.Instructions)
	}
	if len(m.Events) == 0 {
		t.Fatal("no events")
	}
	// the homograph "cloves" must be a UNIT here.
	if m.Ingredients[1].Unit != "cloves" || m.Ingredients[1].Name != "garlic" {
		t.Fatalf("clove homograph: %+v", m.Ingredients[1])
	}
}

func TestAnnotateInstructionPublic(t *testing.T) {
	spans, tree, rels := pipe(t).AnnotateInstruction("Bring the water to a boil in a large pot.")
	if len(spans) == 0 || tree.RootIndex() < 0 || len(rels) == 0 {
		t.Fatalf("spans=%d root=%d rels=%d", len(spans), tree.RootIndex(), len(rels))
	}
}

func TestEstimateNutritionPublic(t *testing.T) {
	p := pipe(t)
	m := p.ModelRecipe("Sweet", "", []string{"100 grams sugar", "100 grams butter"}, "Mix the sugar and the butter in a bowl.")
	profile, resolved := p.EstimateNutrition(m)
	if resolved != 2 {
		t.Fatalf("resolved = %d (%+v)", resolved, m.Ingredients)
	}
	if profile.Calories < 900 || profile.Calories > 1300 {
		t.Fatalf("calories = %v", profile.Calories)
	}
	if !strings.Contains(profile.String(), "kcal") {
		t.Fatal("profile string")
	}
}

func TestSimilarityPublic(t *testing.T) {
	p := pipe(t)
	a := p.ModelRecipe("A", "", []string{"2 cups flour", "1 cup sugar"}, "Mix the flour and the sugar in a bowl. Bake for 30 minutes.")
	b := p.ModelRecipe("B", "", []string{"2 cups flour", "1 cup sugar"}, "Mix the flour and the sugar in a bowl. Bake for 30 minutes.")
	c := p.ModelRecipe("C", "", []string{"1 pound beef"}, "Grill the beef for 10 minutes.")
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatalf("identical recipes should outscore unrelated: %v vs %v",
			Similarity(a, b), Similarity(a, c))
	}
	ranked := MostSimilar(a, []*RecipeModel{c, b})
	if ranked[0].Index != 1 {
		t.Fatalf("ranking = %+v", ranked)
	}
}

func TestSyntheticRecipes(t *testing.T) {
	rs := SyntheticRecipes(6, 42)
	if len(rs) != 6 {
		t.Fatalf("recipes = %d", len(rs))
	}
	for _, r := range rs {
		if r.Title == "" || len(r.IngredientLines) == 0 || r.Instructions == "" {
			t.Fatalf("incomplete recipe: %+v", r)
		}
	}
	again := SyntheticRecipes(6, 42)
	if again[0].Title != rs[0].Title {
		t.Fatal("not deterministic")
	}
}

func TestEndToEndOnSynthetic(t *testing.T) {
	p := pipe(t)
	for _, r := range SyntheticRecipes(10, 7) {
		m := p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions)
		if len(m.Ingredients) != len(r.IngredientLines) {
			t.Fatalf("%s: %d records for %d lines", r.Title, len(m.Ingredients), len(r.IngredientLines))
		}
		named := 0
		for _, rec := range m.Ingredients {
			if rec.Name != "" {
				named++
			}
		}
		if named < len(m.Ingredients)/2 {
			t.Fatalf("%s: only %d/%d ingredients named", r.Title, named, len(m.Ingredients))
		}
		if len(m.Events) == 0 {
			t.Fatalf("%s: no events", r.Title)
		}
	}
}

func TestSaveLoadPipeline(t *testing.T) {
	p := pipe(t)
	var buf strings.Builder
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPipeline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	phrase := "1 sheet frozen puff pastry (thawed)"
	a := p.AnnotateIngredient(phrase)
	b := loaded.AnnotateIngredient(phrase)
	if a != b {
		t.Fatalf("round trip changed annotation: %+v vs %+v", a, b)
	}
	_, _, relsA := p.AnnotateInstruction("Bring the water to a boil in a large pot.")
	_, _, relsB := loaded.AnnotateInstruction("Bring the water to a boil in a large pot.")
	if len(relsA) != len(relsB) {
		t.Fatal("round trip changed relations")
	}
	if _, err := LoadPipeline(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected error on garbage")
	}
}
